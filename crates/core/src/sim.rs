//! The whole-network event loop: stations, medium, wired backhaul, TCP
//! endpoints, and the HACK drivers, wired together.
//!
//! ## Event ordering contract
//!
//! * When a PPDU ends, receptions are dispatched **before** channel-idle
//!   edges, so NAV is always set before anyone resumes contention, and
//!   the transmitter's `on_tx_end` runs last.
//! * A station beginning a transmission notifies every other station's
//!   carrier sense synchronously — a `TxStart` timer armed for the same
//!   instant still fires (both stations transmit: that *is* a
//!   collision).
//! * Host-stack traversals (MAC → TCP and TCP → MAC) cost
//!   `stack_delay`; blob installs cost `dma_delay`. Both exceed SIFS,
//!   which is why TCP ACKs must ride a *later* frame's LL ACK (§2.2).

use std::collections::{HashMap, VecDeque};

use hack_mac::{
    Action, AssocMachine, AssocState, AssocStep, Frame, HackBlob, MacConfig, Station, TimerKind,
    TxDescriptor,
};
use hack_phy::{
    BssPlacement, Channel, InterferenceGraph, LossModel, Medium, MpduStatus, PhyRate, PpduMeta,
    RoamMonitor, StationId, Trajectory, TxId,
};
use hack_rohc::DecompressStats;
use hack_sim::{
    QuantileSketch, Scheduler, SimDuration, SimRng, SimTime, ThroughputMeter, TimerTable,
    TimerToken,
};
use hack_tcp::{Connection, FiveTuple, Ipv4Addr, Ipv4Packet, SendBudget, TcpConfig, Transport};
use hack_trace::TraceHandle;

use crate::driver::{CompressSide, DecompressSide, DriverAction, HackMode};
use crate::packet::NetPacket;
use crate::scenario::{ChannelChange, ClassReport, LossConfig, RunResult, ScenarioConfig, Standard};
use crate::supervisor::{FlowSupervisor, HealthSignal, SupervisorAction, SupervisorConfig};
use crate::traffic::{ShortFlowConfig, TrafficClass, TrafficModel};
use crate::wired::WiredLink;

const AP: StationId = StationId(0);
const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

/// Held-ACK age past which the compress side raises a staleness health
/// signal (supervised runs only). Generous against ordinary flush-timer
/// latency — only a wedged HACK path trips it.
const HELD_STALE_LIMIT: SimDuration = SimDuration::from_millis(50);

fn client_sid(i: usize) -> StationId {
    StationId(1 + i as u32)
}

fn client_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(192, 168, 0, 10 + i as u8)
}

/// One BSS in the world: its AP station and the contiguous block of
/// flows it serves.
struct Cell {
    ap: StationId,
    /// Global flow index of the cell's first client.
    flow_base: usize,
}

/// Station numbering and addressing for the world.
///
/// Legacy single-BSS worlds (`cfg.bss` empty) keep the historical plan —
/// AP = station 0, client *i* = station 1+i, 192.168.0.x addressing — so
/// every pre-dense digest is preserved bit for bit. Dense worlds get one
/// cell per [`BssSpec`](crate::BssSpec) with stations blocked per cell
/// (AP₀, its clients, AP₁, its clients, …) and 10.1.x.y addressing. Flow
/// indices stay global (0..total clients) in cell order, so per-flow
/// config vectors keep their meaning.
struct Layout {
    cells: Vec<Cell>,
    /// flow → (cell index, client station).
    flows: Vec<(usize, StationId)>,
    /// station id → cell index.
    cell_of: Vec<usize>,
    legacy: bool,
}

impl Layout {
    fn from_cfg(cfg: &ScenarioConfig) -> Layout {
        if cfg.bss.is_empty() {
            let n = cfg.n_clients;
            Layout {
                cells: vec![Cell {
                    ap: AP,
                    flow_base: 0,
                }],
                flows: (0..n).map(|i| (0, client_sid(i))).collect(),
                cell_of: vec![0; n + 1],
                legacy: true,
            }
        } else {
            let mut cells = Vec::with_capacity(cfg.bss.len());
            let mut flows = Vec::new();
            let mut cell_of = Vec::new();
            let mut next = 0u32;
            for (b, spec) in cfg.bss.iter().enumerate() {
                let ap = StationId(next);
                cell_of.push(b);
                next += 1;
                let flow_base = flows.len();
                for _ in 0..spec.n_clients {
                    flows.push((b, StationId(next)));
                    cell_of.push(b);
                    next += 1;
                }
                cells.push(Cell { ap, flow_base });
            }
            Layout {
                cells,
                flows,
                cell_of,
                legacy: false,
            }
        }
    }

    fn n_flows(&self) -> usize {
        self.flows.len()
    }

    fn station_ids(&self) -> Vec<StationId> {
        (0..self.cell_of.len() as u32).map(StationId).collect()
    }

    /// Interference domain per station: its cell index.
    fn domains(&self) -> Vec<u32> {
        self.cell_of.iter().map(|&c| c as u32).collect()
    }

    fn client(&self, flow: usize) -> StationId {
        self.flows[flow].1
    }

    fn cell_of_flow(&self, flow: usize) -> usize {
        self.flows[flow].0
    }

    fn ap_of_flow(&self, flow: usize) -> StationId {
        self.cells[self.flows[flow].0].ap
    }

    fn cell(&self, sid: StationId) -> usize {
        self.cell_of[sid.0 as usize]
    }

    fn is_ap(&self, sid: StationId) -> bool {
        self.cells[self.cell(sid)].ap == sid
    }

    fn flow_of_client(&self, sid: StationId) -> Option<usize> {
        if (sid.0 as usize) >= self.cell_of.len() {
            return None;
        }
        let c = &self.cells[self.cell(sid)];
        (c.ap != sid).then(|| c.flow_base + (sid.0 - c.ap.0 - 1) as usize)
    }

    /// IP address of flow `f`'s client. Legacy worlds keep the
    /// historical 192.168.0.x plan; dense worlds use 10.1.x.y, good for
    /// ~64k flows.
    fn client_ip(&self, flow: usize) -> Ipv4Addr {
        if self.legacy {
            client_ip(flow)
        } else {
            Ipv4Addr::new(10, 1, (flow / 250) as u8, ((flow % 250) + 2) as u8)
        }
    }
}

/// One TCP endpoint living somewhere in the network.
struct Endpoint {
    conn: Option<Connection>,
    /// `None` = behind the wired backhaul; `Some(sid)` = on a wireless
    /// station (client, or the AP when `server_at_ap`).
    station: Option<StationId>,
    tuple: FiveTuple,
    flow: usize,
    /// Role: the flow's data sender?
    is_sender: bool,
    budget: SendBudget,
    tcp_cfg: TcpConfig,
    iss: u32,
    delivered_recorded: u64,
    /// TCP timeouts already reported to the supervisor.
    timeouts_seen: u64,
    /// Deadline of the currently armed retransmit-timer event, so a
    /// resched to the *same* instant skips the cancel-and-rearm (every
    /// delivered segment reschedules; the deadline rarely moves).
    timer_at: Option<SimTime>,
    /// Estimator-divergence window (supervised senders only): window
    /// start plus the sampler-delivered and cumulative-acked byte
    /// counters at that instant.
    est_win: Option<(SimTime, u64, u64)>,
    /// Consecutive divergent windows seen so far.
    est_bad_windows: u32,
}

impl Endpoint {
    fn new(
        tuple: FiveTuple,
        station: Option<StationId>,
        flow: usize,
        is_sender: bool,
        budget: SendBudget,
        tcp_cfg: TcpConfig,
        iss: u32,
    ) -> Endpoint {
        Endpoint {
            conn: None,
            station,
            tuple,
            flow,
            is_sender,
            budget,
            tcp_cfg,
            iss,
            delivered_recorded: 0,
            timeouts_seen: 0,
            timer_at: None,
            est_win: None,
            est_bad_windows: 0,
        }
    }
}

enum Event {
    FlowStart(usize),
    MacTimer(StationId, TimerKind, TimerToken<(u32, TimerKind)>),
    TxEnd(TxId),
    HostRx {
        station: StationId,
        pkt: Ipv4Packet,
        native: bool,
    },
    WiredDeliver {
        /// Which cell's backhaul delivered the packet.
        cell: usize,
        to_ap: bool,
        pkt: Ipv4Packet,
    },
    TcpTimer(usize, TimerToken<u32>),
    InstallBlob {
        station: StationId,
        peer: StationId,
        bytes: Vec<u8>,
        generation: u64,
    },
    HackFlush(StationId, StationId, TimerToken<(u32, u32)>),
    /// Apply scheduled channel dynamics entry `i` (index into
    /// `cfg.dynamics`).
    ChannelDynamics(usize),
    /// A flow supervisor's probation probe timer fired.
    SupProbe(usize, TimerToken<u32>),
    /// Advance waypoint trajectories and evaluate the SNR roam trigger
    /// (roam-active worlds only).
    MobilityTick,
    /// Execute roam-schedule entry `i` (index into `cfg.roam.schedule`).
    RoamCmd(usize),
    /// A roaming flow's association machine timer fired (scan end or
    /// retry backoff); stale tokens are dropped.
    RoamStep {
        flow: usize,
        token: u32,
    },
    /// A short-flow think gap elapsed: begin the flow's next transfer
    /// (reusing the connection or opening a fresh one per its model).
    FlowRestart(usize),
    /// Emit the next paced UDP datagram for a CBR/on-off flow; stale
    /// tokens (from a superseded on-period) are dropped.
    PaceTick {
        flow: usize,
        token: u32,
    },
    /// Flip an on/off source between its on and off periods.
    PaceToggle(usize),
}

#[cfg(feature = "evprof")]
impl Event {
    const KIND_NAMES: [&'static str; 16] = [
        "FlowStart",
        "MacTimer",
        "TxEnd",
        "HostRx",
        "WiredDeliver",
        "TcpTimer",
        "InstallBlob",
        "HackFlush",
        "ChannelDynamics",
        "SupProbe",
        "MobilityTick",
        "RoamCmd",
        "RoamStep",
        "FlowRestart",
        "PaceTick",
        "PaceToggle",
    ];

    fn kind_index(&self) -> usize {
        match self {
            Event::FlowStart(_) => 0,
            Event::MacTimer(..) => 1,
            Event::TxEnd(_) => 2,
            Event::HostRx { .. } => 3,
            Event::WiredDeliver { .. } => 4,
            Event::TcpTimer(..) => 5,
            Event::InstallBlob { .. } => 6,
            Event::HackFlush(..) => 7,
            Event::ChannelDynamics(_) => 8,
            Event::SupProbe(..) => 9,
            Event::MobilityTick => 10,
            Event::RoamCmd(_) => 11,
            Event::RoamStep { .. } => 12,
            Event::FlowRestart(_) => 13,
            Event::PaceTick { .. } => 14,
            Event::PaceToggle(_) => 15,
        }
    }
}

/// Mid-run state of one short-flow ([`TrafficModel::ShortFlows`]) flow.
struct ShortState {
    cfg: ShortFlowConfig,
    /// Cumulative receiver-delivered byte count that ends the current
    /// transfer (each new transfer adds its drawn size).
    target: u64,
    /// Is a transfer in flight right now (vs. sitting in a think gap)?
    in_transfer: bool,
    /// Start instant of the in-flight transfer, for FCT.
    started: SimTime,
    /// Connection generation (no-reuse mode re-keys ports and ISS per
    /// transfer so every generation is a distinct five-tuple).
    generation: u32,
}

/// Mid-run state of one paced-UDP (CBR / on-off) flow.
struct PaceState {
    /// Inter-packet gap at the configured rate.
    interval: SimDuration,
    payload: u32,
    /// Currently in an on-period? (CBR sources are always on.)
    on: bool,
    /// Per-flow IP ident counter — doubles as the packet sequence
    /// number for one-way latency bookkeeping.
    ident: u16,
    /// Stale-token guard for [`Event::PaceTick`]: bumped at each
    /// on-period start so a superseded tick chain dies quietly.
    tick_token: u32,
    /// Send timestamps of in-flight datagrams, keyed by ident.
    sent_at: HashMap<u16, SimTime>,
    /// Send order, so lost datagrams age out of `sent_at` (bounded).
    order: VecDeque<u16>,
    /// Previous delivered datagram's one-way latency (ns), for jitter.
    last_latency: Option<u64>,
}

impl PaceState {
    fn new(payload_bytes: u32, rate_kbps: u64, on: bool) -> PaceState {
        // payload_bytes * 8 bits at rate_kbps kilobits/s, in ns.
        let ns = (u64::from(payload_bytes) * 8_000_000 / rate_kbps.max(1)).max(1);
        PaceState {
            interval: SimDuration::from_nanos(ns),
            // Clamp to one MTU-sized MSDU payload.
            payload: payload_bytes.clamp(1, 1472),
            on,
            ident: 0,
            tick_token: 0,
            sent_at: HashMap::new(),
            order: VecDeque::new(),
            last_latency: None,
        }
    }
}

/// Per-flow runtime state: which traffic model drives the flow, where
/// its endpoints live in `World::endpoints`, and the model-specific
/// machinery (short-flow restarts, UDP pacing).
struct FlowRt {
    model: TrafficModel,
    /// First index of this flow's endpoints in `World::endpoints`.
    ep_base: usize,
    /// Endpoint count: 2 (bulk/short), 4 (bidirectional), 0 (UDP-class).
    ep_count: usize,
    /// Completion instant, for byte-budgeted (bulk/bidirectional) flows
    /// that have delivered `cfg.transfer_bytes` on every receiver.
    done_at: Option<SimTime>,
    /// Per-flow traffic randomness, forked off the world seed (only for
    /// models that draw: short flows and on/off sources).
    rng: Option<SimRng>,
    short: Option<ShortState>,
    pace: Option<PaceState>,
}

impl FlowRt {
    fn ep_range(&self) -> std::ops::Range<usize> {
        self.ep_base..self.ep_base + self.ep_count
    }
}

/// Per-world roaming state. Present only when `cfg.roam.is_active()`, so
/// roam-free worlds allocate nothing, draw nothing, and keep their
/// same-seed trace digests bit for bit.
struct RoamRuntime {
    /// flow → cell currently serving it (starts at the layout cell).
    cur_cell: Vec<usize>,
    /// Association machine per flow, instantiated on its first roam.
    machines: Vec<Option<AssocMachine>>,
    /// SNR roam monitor per flow (present when a trigger is configured).
    monitors: Vec<Option<RoamMonitor>>,
    /// Waypoint trajectory per flow's client, if one was scheduled.
    trajectories: Vec<Option<Trajectory>>,
    /// Packets parked while their flow is between associations:
    /// `(upstream, packet)` where upstream = client → AP.
    parked: Vec<Vec<(bool, Ipv4Packet)>>,
    /// Stale-token guard for [`Event::RoamStep`].
    step_token: Vec<u32>,
    /// Association-attempt randomness, forked off the world seed so
    /// roam-free draws are untouched.
    rng: SimRng,
    /// Completed re-associations (including give-up returns).
    roams: u64,
}

/// The assembled simulation.
pub struct World {
    cfg: ScenarioConfig,
    layout: Layout,
    sched: Scheduler<Event>,
    mac_timers: TimerTable<(u32, TimerKind)>,
    tcp_timers: TimerTable<u32>,
    flush_timers: TimerTable<(u32, u32)>,
    sup_timers: TimerTable<u32>,
    /// One supervisor per flow; empty when supervision is off.
    supervisors: Vec<FlowSupervisor>,
    medium: Medium,
    stations: Vec<Station<NetPacket>>,
    compress: HashMap<(u32, u32), CompressSide>,
    decompress: Vec<DecompressSide>,
    tx_payloads: HashMap<TxId, (Vec<Frame<NetPacket>>, bool, StationId)>,
    /// One backhaul per cell (legacy worlds: exactly one).
    wired: Vec<WiredLink>,
    endpoints: Vec<Endpoint>,
    ep_by_tuple: HashMap<FiveTuple, usize>,
    /// Client IP → flow index (replaces the per-packet linear scan).
    ip_to_flow: HashMap<Ipv4Addr, usize>,
    meters: Vec<ThroughputMeter>,
    flow_start_at: Vec<SimTime>,
    /// Per-flow traffic runtime (model, endpoint range, restart/pacing
    /// state). Indexed by flow.
    flows: Vec<FlowRt>,
    /// Per-class flow-completion-time sketch (ns samples), indexed by
    /// [`TrafficClass::code`].
    class_fct: Vec<QuantileSketch>,
    /// Per-class one-way datagram latency sketch (paced-UDP classes).
    class_latency: Vec<QuantileSketch>,
    /// Per-class latency-delta (jitter) sketch (paced-UDP classes).
    class_jitter: Vec<QuantileSketch>,
    /// Completed transfers per class (short flows count every transfer).
    class_transfers: Vec<u64>,
    rng: SimRng,
    end: SimTime,
    ap_queue_drops: u64,
    udp_ident: u16,
    completion: Option<SimTime>,
    /// Mobility/handoff machinery (`None` unless `cfg.roam.is_active()`).
    roam: Option<RoamRuntime>,
    /// Scratch for the idle-edge sweep in `on_tx_end` (avoids a per-PPDU
    /// allocation).
    idle_buf: Vec<StationId>,
    trace: TraceHandle,
}

/// Step-by-step assembly of a [`World`] — the single construction path
/// behind every entry point.
///
/// ```no_run
/// use hack_core::{HackMode, ScenarioBuilder, SupervisorConfig, World};
///
/// let cfg = ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build();
/// let result = World::builder(cfg)
///     .supervisor(SupervisorConfig::default())
///     .build()
///     .run();
/// # let _ = result;
/// ```
///
/// The legacy entry points ([`World::new`], [`World::new_traced`], free
/// [`run`] and [`run_traced`]) are thin delegations to this builder, so
/// all five construct byte-identical worlds (equal seeds ⇒ equal trace
/// digests).
#[derive(Debug)]
pub struct WorldBuilder {
    cfg: ScenarioConfig,
    trace: TraceHandle,
}

impl WorldBuilder {
    /// Attach a structured-event trace sink, wired through every layer
    /// (PHY medium, MAC stations, TCP endpoints, ROHC drivers).
    pub fn trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Enable the per-flow HACK supervisor (overrides
    /// `cfg.supervisor`).
    pub fn supervisor(mut self, sup: SupervisorConfig) -> Self {
        self.cfg.supervisor = Some(sup);
        self
    }

    /// Assemble the network.
    #[must_use]
    pub fn build(self) -> World {
        World::assemble(self.cfg, self.trace)
    }

    /// Convenience: assemble and run to completion.
    pub fn run(self) -> RunResult {
        self.build().run()
    }
}

impl World {
    /// Start building the network described by `cfg`.
    pub fn builder(cfg: ScenarioConfig) -> WorldBuilder {
        WorldBuilder {
            cfg,
            trace: TraceHandle::off(),
        }
    }

    /// Build the network described by `cfg` without tracing.
    ///
    /// Thin shim over [`World::builder`] (use that in new code).
    pub fn new(cfg: ScenarioConfig) -> Self {
        World::builder(cfg).build()
    }

    /// Build the network described by `cfg`, wiring `trace` through every
    /// layer (PHY medium, MAC stations, TCP endpoints, ROHC drivers).
    ///
    /// Thin shim over [`World::builder`]`(cfg).trace(trace).build()`
    /// (use that in new code).
    pub fn new_traced(cfg: ScenarioConfig, trace: TraceHandle) -> Self {
        World::builder(cfg).trace(trace).build()
    }

    /// The one true construction path (every public entry point funnels
    /// here through [`WorldBuilder::build`]).
    fn assemble(cfg: ScenarioConfig, trace: TraceHandle) -> Self {
        let layout = Layout::from_cfg(&cfg);
        let n = layout.n_flows();
        assert!(n >= 1, "need at least one client");
        if !cfg.bss.is_empty() {
            assert_eq!(
                cfg.n_clients, n,
                "n_clients must equal the BSS client total \
                 (ScenarioBuilder::bss keeps them in sync)"
            );
        }
        let rng = SimRng::new(cfg.seed);

        // --- PHY rate and MAC configs ---
        let (_rate, base_mac): (PhyRate, MacConfig) = match cfg.standard {
            Standard::Dot11a { rate_mbps } => {
                let r = PhyRate::dot11a(rate_mbps);
                (r, MacConfig::dot11a(r))
            }
            Standard::Dot11n { rate_mbps } => {
                let r = PhyRate::ht(rate_mbps);
                (r, MacConfig::dot11n(r))
            }
        };
        let hack_on = cfg.hack_mode != HackMode::Disabled;
        let mut mac_cfg = base_mac;
        if hack_on && cfg.hack_mode != HackMode::Opportunistic {
            // MORE DATA marking and SYNC are the MAC-visible HACK bits;
            // Opportunistic deliberately runs without them (§3.2).
            mac_cfg = mac_cfg.with_hack_bits();
        }
        if hack_on {
            // SYNC-based retention is part of every HACK build (unless
            // ablated away to demonstrate why §3.4 needs it).
            mac_cfg.use_sync = !cfg.disable_sync;
        }
        if cfg.sora_quirks {
            mac_cfg = mac_cfg.with_sora_quirks();
        }
        if let Some(txop) = cfg.txop_limit {
            mac_cfg.timings.txop_limit = txop;
        }
        if let Some(limit) = cfg.retry_limit {
            mac_cfg.timings.retry_limit = limit;
        }

        // --- stations & medium ---
        let station_ids: Vec<StationId> = layout.station_ids();
        let mut channel = Channel::indoor();
        let mut place_rng = rng.fork(0xC1AC);
        if cfg.bss.is_empty() {
            // Legacy single cell: the historical placement draw order,
            // untouched so same-seed digests stay pinned.
            channel.place(AP, 0.0, 0.0);
            for i in 0..n {
                let (x, y) = match cfg.loss {
                    LossConfig::SnrDistance(d) => (d, 0.0),
                    _ => place_rng.point_in_disc(10.0),
                };
                channel.place(client_sid(i), x, y);
            }
        } else {
            // Dense: APs at their declared spots, clients scattered (or
            // at the SNR sweep distance) around their own AP, drawn in
            // global flow order.
            for (b, spec) in cfg.bss.iter().enumerate() {
                channel.place(layout.cells[b].ap, spec.x, spec.y);
            }
            for f in 0..n {
                let spec = &cfg.bss[layout.cell_of_flow(f)];
                let (dx, dy) = match cfg.loss {
                    LossConfig::SnrDistance(d) => (d, 0.0),
                    _ => place_rng.point_in_disc(10.0),
                };
                channel.place(layout.client(f), spec.x + dx, spec.y + dy);
            }
        }
        let loss = match &cfg.loss {
            LossConfig::Ideal => LossModel::Ideal,
            LossConfig::PerClient(per) => {
                LossModel::fixed(per.iter().enumerate().map(|(i, &p)| (layout.client(i), p)))
            }
            LossConfig::SnrDistance(_) => LossModel::Snr,
            LossConfig::Burst(params) => LossModel::Burst(*params),
        };
        let mut medium = if cfg.bss.is_empty() {
            Medium::new(station_ids.clone(), loss, Some(channel))
        } else {
            let aps: Vec<BssPlacement> = cfg
                .bss
                .iter()
                .map(|b| BssPlacement {
                    x: b.x,
                    y: b.y,
                    channel: b.channel,
                })
                .collect();
            let graph = InterferenceGraph::derive(&aps, &cfg.interference);
            Medium::with_domains(
                station_ids.clone(),
                layout.domains(),
                graph,
                loss,
                Some(channel),
            )
        };
        medium.set_corruption(cfg.corrupt);
        medium.set_trace(trace.clone());

        let stations: Vec<Station<NetPacket>> = station_ids
            .iter()
            .map(|&sid| {
                let mut sc = mac_cfg.clone();
                if let Some(i) = layout.flow_of_client(sid) {
                    // Per-client capability: a stock (non-HACK) client
                    // advertises no HACK bit at association.
                    sc.hack_capable = cfg.client_hack_capable.get(i).copied().unwrap_or(true);
                } else if let Some(&cap) = cfg.roam.ap_hack_capable.get(layout.cell(sid)) {
                    // Per-AP capability (roam worlds): a flow can legally
                    // hand off to an AP that cannot decode HACK blobs.
                    sc.hack_capable = cap;
                }
                let mut s = Station::new(sid, sc, rng.fork(u64::from(sid.0) + 1));
                s.set_trace(trace.clone());
                s
            })
            .collect();

        // --- HACK drivers ---
        let mut compress = HashMap::new();
        let decompress: Vec<DecompressSide> = station_ids
            .iter()
            .map(|&sid| {
                let mut d = DecompressSide::new();
                d.set_trace(trace.clone(), sid.0);
                d
            })
            .collect();
        let supervised = cfg.supervisor.is_some()
            && hack_on
            && (0..n).any(|i| cfg.model_of(i).is_tcp());
        for i in 0..n {
            let c = layout.client(i);
            let ap = layout.ap_of_flow(i);
            // Client compresses toward its AP (downloads)…
            let mut cs = CompressSide::new(cfg.hack_mode);
            cs.set_trace(trace.clone(), c.0);
            cs.set_held_cap(cfg.held_cap);
            if supervised {
                cs.set_stale_limit(Some(HELD_STALE_LIMIT));
            }
            compress.insert((c.0, ap.0), cs);
            // …and the AP toward each client (uploads) — symmetric design.
            let mut cs = CompressSide::new(cfg.hack_mode);
            cs.set_trace(trace.clone(), ap.0);
            cs.set_held_cap(cfg.held_cap);
            if supervised {
                cs.set_stale_limit(Some(HELD_STALE_LIMIT));
            }
            compress.insert((ap.0, c.0), cs);
        }
        let supervisors: Vec<FlowSupervisor> = if supervised {
            let sup_cfg = cfg.supervisor.expect("checked");
            (0..n).map(|_| FlowSupervisor::new(sup_cfg)).collect()
        } else {
            Vec::new()
        };

        // --- endpoints ---
        let mut endpoints = Vec::new();
        let mut ep_by_tuple = HashMap::new();
        let mut meters = Vec::new();
        let mut flow_start_at = Vec::new();
        let base_start = SimTime::from_millis(10);
        let tcp_cfg = TcpConfig {
            delayed_ack: cfg.delayed_ack,
            rcv_window: cfg.rcv_window,
            cc: cfg.cc,
            ..TcpConfig::default()
        };
        // One client/server endpoint pair per TCP direction. `upload`
        // marks the wireless client (always the TCP initiator) as the
        // data sender for the pair.
        #[allow(clippy::too_many_arguments)]
        fn push_pair(
            endpoints: &mut Vec<Endpoint>,
            ep_by_tuple: &mut HashMap<FiveTuple, usize>,
            trace: &TraceHandle,
            tcp_cfg: &TcpConfig,
            layout: &Layout,
            server_at_ap: bool,
            i: usize,
            tuple: FiveTuple,
            upload: bool,
            client_budget: SendBudget,
            server_budget: SendBudget,
            client_iss: u32,
            server_iss: u32,
        ) {
            // Wireless-client endpoint (always the TCP initiator).
            let ep_client = Endpoint::new(
                tuple,
                Some(layout.client(i)),
                i,
                upload,
                client_budget,
                tcp_cfg.clone(),
                client_iss,
            );
            // Server endpoint (wired, or on the flow's AP itself).
            let mut server_conn = Connection::server(tcp_cfg.clone(), tuple.reversed(), server_iss);
            server_conn.set_budget(server_budget);
            server_conn.set_trace(
                trace.clone(),
                if server_at_ap {
                    layout.ap_of_flow(i).0
                } else {
                    u32::MAX
                },
            );
            let mut ep_server = Endpoint::new(
                tuple.reversed(),
                server_at_ap.then(|| layout.ap_of_flow(i)),
                i,
                !upload,
                SendBudget::None, // already set on conn
                tcp_cfg.clone(),
                0,
            );
            ep_server.conn = Some(server_conn);
            let ci = endpoints.len();
            ep_by_tuple.insert(ep_client.tuple, ci);
            endpoints.push(ep_client);
            let si = endpoints.len();
            ep_by_tuple.insert(ep_server.tuple, si);
            endpoints.push(ep_server);
        }
        let mut flows_rt: Vec<FlowRt> = Vec::with_capacity(n);
        for i in 0..n {
            let model = cfg.model_of(i);
            let ep_base = endpoints.len();
            let budget = match cfg.transfer_bytes {
                Some(b) => SendBudget::Bytes(b),
                None => SendBudget::Unlimited,
            };
            let primary = FiveTuple {
                src_ip: layout.client_ip(i),
                dst_ip: SERVER_IP,
                src_port: 40_000 + i as u16,
                dst_port: 5_001 + i as u16,
                protocol: 6,
            };
            match model {
                TrafficModel::BulkDownload | TrafficModel::BulkUpload => {
                    let upload = matches!(model, TrafficModel::BulkUpload);
                    push_pair(
                        &mut endpoints,
                        &mut ep_by_tuple,
                        &trace,
                        &tcp_cfg,
                        &layout,
                        cfg.server_at_ap,
                        i,
                        primary,
                        upload,
                        if upload { budget } else { SendBudget::None },
                        if upload { SendBudget::None } else { budget },
                        10_000 + i as u32 * 101,
                        90_000 + i as u32 * 103,
                    );
                }
                TrafficModel::ShortFlows(_) => {
                    // Server is the responder/sender; its budget is armed
                    // per transfer at flow (re)start.
                    push_pair(
                        &mut endpoints,
                        &mut ep_by_tuple,
                        &trace,
                        &tcp_cfg,
                        &layout,
                        cfg.server_at_ap,
                        i,
                        primary,
                        false,
                        SendBudget::None,
                        SendBudget::None,
                        10_000 + i as u32 * 101,
                        90_000 + i as u32 * 103,
                    );
                }
                TrafficModel::Bidirectional => {
                    // Download direction on the historical tuple plan…
                    push_pair(
                        &mut endpoints,
                        &mut ep_by_tuple,
                        &trace,
                        &tcp_cfg,
                        &layout,
                        cfg.server_at_ap,
                        i,
                        primary,
                        false,
                        SendBudget::None,
                        budget,
                        10_000 + i as u32 * 101,
                        90_000 + i as u32 * 103,
                    );
                    // …plus a second pair where the client is the data
                    // sender, so both ends hold and compress ACKs.
                    let up_tuple = FiveTuple {
                        src_ip: layout.client_ip(i),
                        dst_ip: SERVER_IP,
                        src_port: 50_000 + i as u16,
                        dst_port: 6_001 + i as u16,
                        protocol: 6,
                    };
                    push_pair(
                        &mut endpoints,
                        &mut ep_by_tuple,
                        &trace,
                        &tcp_cfg,
                        &layout,
                        cfg.server_at_ap,
                        i,
                        up_tuple,
                        true,
                        budget,
                        SendBudget::None,
                        20_000 + i as u32 * 101,
                        80_000 + i as u32 * 103,
                    );
                }
                TrafficModel::UdpDownload | TrafficModel::Cbr(_) | TrafficModel::OnOff(_) => {}
            }
            meters.push(ThroughputMeter::new());
            flow_start_at.push(base_start + cfg.stagger * i as u64);
            let needs_rng =
                matches!(model, TrafficModel::ShortFlows(_) | TrafficModel::OnOff(_));
            flows_rt.push(FlowRt {
                model,
                ep_base,
                ep_count: endpoints.len() - ep_base,
                done_at: None,
                rng: needs_rng.then(|| rng.fork(0x7AFF_0000 + i as u64)),
                short: match model {
                    TrafficModel::ShortFlows(c) => Some(ShortState {
                        cfg: c,
                        target: 0,
                        in_transfer: false,
                        started: SimTime::ZERO,
                        generation: 0,
                    }),
                    _ => None,
                },
                pace: match model {
                    TrafficModel::Cbr(c) => Some(PaceState::new(c.payload_bytes, c.rate_kbps, true)),
                    TrafficModel::OnOff(o) => {
                        Some(PaceState::new(o.payload_bytes, o.rate_kbps, false))
                    }
                    _ => None,
                },
            });
        }

        let end = SimTime::ZERO + cfg.duration;
        let ip_to_flow = (0..n).map(|f| (layout.client_ip(f), f)).collect();
        let wired = (0..layout.cells.len())
            .map(|_| WiredLink::paper_backhaul())
            .collect();
        let mut world = World {
            sched: Scheduler::with_kind(cfg.queue),
            mac_timers: TimerTable::new(),
            tcp_timers: TimerTable::new(),
            flush_timers: TimerTable::new(),
            sup_timers: TimerTable::new(),
            supervisors,
            medium,
            stations,
            compress,
            decompress,
            tx_payloads: HashMap::new(),
            wired,
            endpoints,
            ep_by_tuple,
            ip_to_flow,
            meters,
            flow_start_at: flow_start_at.clone(),
            flows: flows_rt,
            class_fct: vec![QuantileSketch::default(); TrafficClass::ALL.len()],
            class_latency: vec![QuantileSketch::default(); TrafficClass::ALL.len()],
            class_jitter: vec![QuantileSketch::default(); TrafficClass::ALL.len()],
            class_transfers: vec![0; TrafficClass::ALL.len()],
            rng: rng.fork(0xF00D),
            end,
            ap_queue_drops: 0,
            udp_ident: 0,
            completion: None,
            roam: None,
            idle_buf: Vec::new(),
            trace,
            layout,
            cfg,
        };
        if world.cfg.roam.is_active() {
            let trigger = world.cfg.roam.trigger;
            let mut trajectories: Vec<Option<Trajectory>> = vec![None; n];
            for p in &world.cfg.roam.paths {
                if p.client < n {
                    trajectories[p.client] = Some(Trajectory::new(p.waypoints.clone()));
                }
            }
            world.roam = Some(RoamRuntime {
                cur_cell: (0..n).map(|f| world.layout.cell_of_flow(f)).collect(),
                machines: vec![None; n],
                monitors: (0..n)
                    .map(|_| trigger.map(|t| RoamMonitor::new(t, SimTime::ZERO)))
                    .collect(),
                trajectories,
                parked: vec![Vec::new(); n],
                step_token: vec![0; n],
                rng: rng.fork(0x0A11),
                roams: 0,
            });
            for i in 0..world.cfg.roam.schedule.len() {
                let at = SimTime::ZERO + world.cfg.roam.schedule[i].at;
                world.sched.schedule_at(at, Event::RoamCmd(i));
            }
            let moving = world.cfg.roam.paths.iter().any(|p| !p.waypoints.is_empty());
            if moving || trigger.is_some() {
                let at = SimTime::ZERO + world.cfg.roam.mobility_tick;
                world.sched.schedule_at(at, Event::MobilityTick);
            }
        }
        for (i, &at) in flow_start_at.iter().enumerate() {
            world.sched.schedule_at(at, Event::FlowStart(i));
        }
        for i in 0..world.cfg.dynamics.len() {
            let at = SimTime::ZERO + world.cfg.dynamics[i].at;
            world.sched.schedule_at(at, Event::ChannelDynamics(i));
        }
        // Association-time capability negotiation, out of band: it
        // models a handshake completed before t = 0, so it burns no air
        // time, no randomness, and (for all-capable cells) no trace
        // events — existing same-seed digests are untouched.
        for i in 0..n {
            let c = world.layout.client(i);
            let ap = world.layout.ap_of_flow(i);
            let req = world.stations[c.0 as usize].assoc_request();
            let resp = world.stations[ap.0 as usize].on_assoc_request(&req);
            world.stations[c.0 as usize].on_assoc_response(&resp);
            if world.stations[c.0 as usize].hack_negotiated(ap) == Some(false) {
                // Permanent clean fallback on this link: the MAC already
                // gates blobs, but force the drivers native too so ACKs
                // are never held against a peer that cannot decode them.
                for key in [(c.0, ap.0), (ap.0, c.0)] {
                    let dacts = world
                        .compress
                        .get_mut(&key)
                        .expect("driver exists")
                        .force_native(SimTime::ZERO);
                    world.apply_driver(StationId(key.0), StationId(key.1), dacts, SimTime::ZERO);
                }
                if !world.supervisors.is_empty() {
                    let acts = world.supervisors[i].mark_peer_incapable();
                    world.apply_supervisor(i, acts, SimTime::ZERO);
                }
            }
        }
        world
    }

    /// Run to completion and collect results.
    pub fn run(mut self) -> RunResult {
        #[cfg(feature = "evprof")]
        let mut prof = [(0u64, 0u64); 16];
        while let Some(at) = self.sched.peek_time() {
            if at > self.end {
                break;
            }
            let (now, ev) = self.sched.pop().expect("peeked");
            #[cfg(feature = "evprof")]
            let (kind, t0) = (ev.kind_index(), std::time::Instant::now());
            self.handle(ev, now);
            #[cfg(feature = "evprof")]
            {
                prof[kind].0 += 1;
                prof[kind].1 += t0.elapsed().as_nanos() as u64;
            }
            if self.completion.is_some() {
                break;
            }
        }
        #[cfg(feature = "evprof")]
        for (i, (n, ns)) in prof.iter().enumerate() {
            if *n > 0 {
                eprintln!(
                    "evprof {:<16} {:>9} events  {:>8.1} ns/event  {:>7.1} ms total",
                    Event::KIND_NAMES[i],
                    n,
                    *ns as f64 / *n as f64,
                    *ns as f64 / 1e6,
                );
            }
        }
        self.collect()
    }

    /// Advance the world through every event scheduled at or before
    /// `until` (clamped to the configured end). Returns `false` once the
    /// world has nothing left to do — queue drained past the end, or all
    /// byte-budgeted flows completed — and `true` while more work
    /// remains. The epoch driver for sharded dense worlds; a full run is
    /// `while run_until(next_epoch) {}` followed by [`World::finish`].
    pub fn run_until(&mut self, until: SimTime) -> bool {
        let until = until.min(self.end);
        while let Some(at) = self.sched.peek_time() {
            if at > self.end {
                return false;
            }
            if at > until {
                return true;
            }
            let (now, ev) = self.sched.pop().expect("peeked");
            self.handle(ev, now);
            if self.completion.is_some() {
                return false;
            }
        }
        false
    }

    /// Collect results after driving the world with [`World::run_until`].
    pub fn finish(self) -> RunResult {
        self.collect()
    }

    /// The configured end of the run.
    pub fn end_time(&self) -> SimTime {
        self.end
    }

    /// Discrete events dispatched so far (monotonic across
    /// [`World::run_until`] calls).
    pub fn events_dispatched(&self) -> u64 {
        self.sched.dispatched()
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event, now: SimTime) {
        match ev {
            Event::FlowStart(flow) => self.start_flow(flow, now),
            Event::MacTimer(sid, kind, token) => {
                if self.mac_timers.fire(token) {
                    // A live AckTimeout token means the response really
                    // never arrived (arrival cancels the timer) — the
                    // supervisor's LL-ACK-loss signal. Capture the peer
                    // before on_timer clears the exchange.
                    let timed_out_peer = (!self.supervisors.is_empty()
                        && kind == TimerKind::AckTimeout)
                        .then(|| self.stations[sid.0 as usize].awaiting_response_from())
                        .flatten();
                    let acts = self.stations[sid.0 as usize].on_timer(kind, now);
                    self.apply(sid, acts, now);
                    if let Some(peer) = timed_out_peer {
                        if let Some(flow) = self.sup_flow(sid, peer) {
                            self.sup_signal(flow, HealthSignal::LlAckTimeout, now);
                        }
                    }
                }
            }
            Event::TxEnd(id) => self.on_tx_end(id, now),
            Event::HostRx {
                station,
                pkt,
                native,
            } => self.on_host_rx(station, pkt, native, now),
            Event::WiredDeliver { cell, to_ap, pkt } => {
                if to_ap {
                    let ap = self.layout.cells[cell].ap;
                    self.ap_downstream(ap, pkt, now);
                } else {
                    self.deliver_to_endpoint(pkt, now);
                }
            }
            Event::TcpTimer(ep, token) => {
                if self.tcp_timers.fire(token) {
                    self.endpoints[ep].timer_at = None;
                    let outputs = {
                        let conn = self.endpoints[ep]
                            .conn
                            .as_mut()
                            .expect("timer on live conn");
                        conn.on_timer(now)
                    };
                    // RTO stall: repeated established-state timeouts with
                    // no ACK progress mean the ACK clock itself died.
                    let mut stall_flow = None;
                    if !self.supervisors.is_empty() {
                        let e = &mut self.endpoints[ep];
                        if let Some(conn) = &e.conn {
                            let timeouts = conn.stats().timeouts;
                            if timeouts > e.timeouts_seen {
                                e.timeouts_seen = timeouts;
                                if conn.rto_streak() >= 2 {
                                    stall_flow = Some(e.flow);
                                }
                            }
                        }
                    }
                    if let Some(flow) = stall_flow {
                        self.sup_signal(flow, HealthSignal::RtoStall, now);
                    }
                    self.route_out(ep, outputs, now);
                    self.record_delivery(ep, now);
                    self.check_estimator(ep, now);
                    self.resched_tcp(ep, now);
                }
            }
            Event::InstallBlob {
                station,
                peer,
                bytes,
                generation,
            } => {
                // No driver for this key: the association was re-keyed to
                // a new AP while the install waited out the DMA delay.
                let Some(side) = self.compress.get_mut(&(station.0, peer.0)) else {
                    return;
                };
                if side.generation() == generation {
                    hack_trace::trace_ev!(
                        self.trace,
                        now.as_nanos(),
                        station.0,
                        hack_trace::Event::MacBlobInstall {
                            peer: peer.0,
                            bytes: bytes.len() as u32
                        }
                    );
                    let displaced =
                        self.stations[station.0 as usize].set_hack_blob(peer, HackBlob { bytes });
                    if let Some(old) = displaced {
                        self.compress
                            .get_mut(&(station.0, peer.0))
                            .expect("driver exists")
                            .recycle_blob(old.bytes);
                    }
                } else {
                    // Stale install (a newer rebuild superseded it while
                    // this one waited out the DMA delay): recycle the
                    // bytes instead of dropping them.
                    side.recycle_blob(bytes);
                }
            }
            Event::HackFlush(station, peer, token) => {
                if self.flush_timers.fire(token) {
                    // The key may have moved to a new AP mid-roam; the
                    // force-native flush already emptied the hold queue.
                    if let Some(side) = self.compress.get_mut(&(station.0, peer.0)) {
                        let dacts = side.on_flush_timer(now);
                        self.apply_driver(station, peer, dacts, now);
                    }
                }
            }
            Event::ChannelDynamics(index) => self.apply_dynamics(index, now),
            Event::SupProbe(flow, token) => {
                if self.sup_timers.fire(token) {
                    let acts = self.supervisors[flow].on_probe_timer(now);
                    self.apply_supervisor(flow, acts, now);
                }
            }
            Event::MobilityTick => self.on_mobility_tick(now),
            Event::RoamCmd(i) => {
                let (flow, target) = {
                    let e = &self.cfg.roam.schedule[i];
                    (e.flow, e.target_bss)
                };
                self.start_roam(flow, target, now);
            }
            Event::RoamStep { flow, token } => self.on_roam_step(flow, token, now),
            Event::FlowRestart(flow) => self.on_flow_restart(flow, now),
            Event::PaceTick { flow, token } => self.on_pace_tick(flow, token, now),
            Event::PaceToggle(flow) => self.on_pace_toggle(flow, now),
        }
    }

    /// Apply one scheduled mid-run channel change to the medium.
    fn apply_dynamics(&mut self, index: usize, now: SimTime) {
        match self.cfg.dynamics[index].change {
            ChannelChange::SnrOffsetDb(db) => self.medium.set_snr_offset_db(db),
            ChannelChange::ClientLoss { client, per } => {
                self.medium
                    .set_station_loss(self.layout.client(client), per, now);
            }
            ChannelChange::MoveClient { client, x, y } => {
                self.medium.place_station(self.layout.client(client), x, y);
                // A scripted move is as real as a waypoint one: if it
                // drags the client across the roam threshold, the roam
                // path must fire, not just the Gilbert–Elliott reset.
                if self.cfg.roam.trigger.is_some() {
                    self.maybe_roam_on_snr(client, now);
                }
            }
        }
        hack_trace::trace_ev!(
            self.trace,
            now.as_nanos(),
            AP.0,
            hack_trace::Event::SimChannelUpdate {
                index: index as u32
            }
        );
    }

    // ------------------------------------------------------------------
    // Roaming
    // ------------------------------------------------------------------

    /// The cell currently serving `flow` (roam-aware).
    fn cur_cell_of_flow(&self, flow: usize) -> usize {
        match &self.roam {
            Some(r) => r.cur_cell[flow],
            None => self.layout.cell_of_flow(flow),
        }
    }

    /// The AP currently serving `flow` (roam-aware).
    fn cur_ap_of_flow(&self, flow: usize) -> StationId {
        self.layout.cells[self.cur_cell_of_flow(flow)].ap
    }

    /// Is `flow` between associations (scanning or reassociating)?
    fn flow_in_blackout(&self, flow: usize) -> bool {
        self.roam
            .as_ref()
            .is_some_and(|r| r.machines[flow].as_ref().is_some_and(AssocMachine::roaming))
    }

    /// Hold a packet for a flow in handoff blackout; re-injected through
    /// the new association, tail-dropped past the cap (TCP retransmits).
    fn park(&mut self, flow: usize, upstream: bool, pkt: Ipv4Packet) {
        let cap = self.cfg.roam.park_cap;
        let r = self.roam.as_mut().expect("blackout implies runtime");
        if r.parked[flow].len() >= cap {
            self.ap_queue_drops += 1;
            return;
        }
        r.parked[flow].push((upstream, pkt));
    }

    /// Advance every scheduled trajectory and re-evaluate the SNR roam
    /// trigger. Self-rescheduling while any client is still moving or a
    /// trigger is configured.
    fn on_mobility_tick(&mut self, now: SimTime) {
        let t = SimDuration::from_nanos(now.as_nanos());
        let n = self.layout.n_flows();
        let mut still_moving = false;
        for flow in 0..n {
            let pos = {
                let Some(traj) = self
                    .roam
                    .as_ref()
                    .and_then(|r| r.trajectories[flow].as_ref())
                else {
                    continue;
                };
                if traj.end().is_some_and(|e| e > t) {
                    still_moving = true;
                }
                traj.position_at(t)
            };
            if let Some((x, y)) = pos {
                self.medium.place_station(self.layout.client(flow), x, y);
            }
        }
        if self.cfg.roam.trigger.is_some() {
            for flow in 0..n {
                self.maybe_roam_on_snr(flow, now);
            }
            // Triggered roams stay possible as long as the clock runs.
            still_moving = true;
        }
        if still_moving {
            let at = now + self.cfg.roam.mobility_tick;
            if at <= self.end {
                self.sched.schedule_at(at, Event::MobilityTick);
            }
        }
    }

    /// Evaluate the SNR roam trigger for `flow` (mobility ticks and
    /// mid-run `MoveClient` dynamics both land here).
    fn maybe_roam_on_snr(&mut self, flow: usize, now: SimTime) {
        if flow >= self.layout.n_flows() || self.flow_in_blackout(flow) {
            return;
        }
        let target = {
            let Some(r) = self.roam.as_ref() else { return };
            let Some(mon) = r.monitors[flow].as_ref() else {
                return;
            };
            let client = self.layout.client(flow);
            let cur = r.cur_cell[flow];
            let serving = self.medium.snr_db(self.layout.cells[cur].ap, client);
            let candidates: Vec<(usize, f64)> = (0..self.layout.cells.len())
                .filter(|&c| c != cur)
                .map(|c| (c, self.medium.snr_db(self.layout.cells[c].ap, client)))
                .collect();
            mon.evaluate(serving, &candidates, now)
        };
        if let Some(target) = target {
            self.start_roam(flow, target, now);
        }
    }

    /// Begin a handoff: flush and tear down the old association, enter
    /// the blackout, and hand control to the association machine.
    fn start_roam(&mut self, flow: usize, target: usize, now: SimTime) {
        if self.roam.is_none() || flow >= self.layout.n_flows() || target >= self.layout.cells.len()
        {
            return;
        }
        let from_cell = self.cur_cell_of_flow(flow);
        if self.flow_in_blackout(flow) || target == from_cell {
            return;
        }
        let client = self.layout.client(flow);
        let old_ap = self.layout.cells[from_cell].ap;
        hack_trace::trace_ev!(
            self.trace,
            now.as_nanos(),
            client.0,
            hack_trace::Event::MacRoamTriggered {
                flow: flow as u32,
                from_cell: from_cell as u32,
                to_cell: target as u32
            }
        );
        // 1) Flush held ACKs on both driver sides before the link dies:
        //    unridden holds are released as native sends (parked below,
        //    re-injected post-roam) — never silently dropped, and holds
        //    that already rode a response were delivered, so no ACK is
        //    ever delivered twice either.
        for key in [(client.0, old_ap.0), (old_ap.0, client.0)] {
            if let Some(side) = self.compress.get_mut(&key) {
                let dacts = side.force_native(now);
                self.apply_driver(StationId(key.0), StationId(key.1), dacts, now);
            }
        }
        // 2) The old association's ROHC contexts die with it: decoding
        //    against a stale context across a handoff is never legal, so
        //    every party forgets the flow and the first post-roam native
        //    ACK re-seeds from scratch.
        let new_ap = self.layout.cells[target].ap;
        for fwd in self.client_tuples(flow) {
            let rev = fwd.reversed();
            for key in [(client.0, old_ap.0), (old_ap.0, client.0)] {
                if let Some(side) = self.compress.get_mut(&key) {
                    side.drop_context(&fwd);
                    side.drop_context(&rev);
                }
            }
            for sid in [client.0 as usize, old_ap.0 as usize, new_ap.0 as usize] {
                self.decompress[sid].drop_context(&fwd);
                self.decompress[sid].drop_context(&rev);
            }
        }
        // 3) MAC teardown: negotiated capability and blob state toward
        //    the old peer go away; unsent MSDUs are parked for the new
        //    association. Frames already committed to the air finish
        //    through the old path.
        let up = self.stations[client.0 as usize].disassociate(old_ap);
        let down = self.stations[old_ap.0 as usize].disassociate(client);
        for m in up {
            self.park(flow, true, m.0);
        }
        for m in down {
            self.park(flow, false, m.0);
        }
        hack_trace::trace_ev!(
            self.trace,
            now.as_nanos(),
            client.0,
            hack_trace::Event::MacDisassociated {
                flow: flow as u32,
                ap: old_ap.0
            }
        );
        // 4) Supervisor blackout + RTO clamp: HACK drops to native for
        //    the handoff, probes are suppressed, and Karn doubling is
        //    pinned so the transport neither probes a dead link nor
        //    backs off into next week while the link is simply absent.
        if flow < self.supervisors.len() {
            let acts = self.supervisors[flow].on_handoff(now);
            self.apply_supervisor(flow, acts, now);
            hack_trace::trace_ev!(
                self.trace,
                now.as_nanos(),
                client.0,
                hack_trace::Event::SupHandoffBlackout {
                    flow: flow as u32,
                    to_cell: target as u32
                }
            );
        }
        let shift = self.cfg.roam.rto_clamp_shift;
        for ep in self.flows[flow].ep_range() {
            if let Some(conn) = self.endpoints.get_mut(ep).and_then(|e| e.conn.as_mut()) {
                conn.clamp_rto_backoff(shift);
            }
        }
        // 5) The association machine takes over.
        let assoc_cfg = self.cfg.roam.assoc;
        let step = {
            let r = self.roam.as_mut().expect("checked");
            let m = r.machines[flow].get_or_insert_with(|| AssocMachine::new(assoc_cfg, from_cell));
            m.start_roam(target, now)
        };
        if let Some(step) = step {
            self.exec_assoc_step(flow, step, now);
        }
    }

    /// A [`Event::RoamStep`] timer fired: advance the flow's association
    /// machine past its current wait.
    fn on_roam_step(&mut self, flow: usize, token: u32, now: SimTime) {
        let step = {
            let Some(r) = self.roam.as_mut() else { return };
            if r.step_token[flow] != token {
                return;
            }
            let Some(m) = r.machines[flow].as_mut() else {
                return;
            };
            match m.state() {
                AssocState::Associated => return,
                AssocState::Scanning => m.on_scan_done(),
                AssocState::Reassociating => m.on_retry_timer(),
            }
        };
        self.exec_assoc_step(flow, step, now);
    }

    /// Carry out association-machine steps until the machine wants to
    /// wait or settles back into `Associated`.
    fn exec_assoc_step(&mut self, flow: usize, mut step: AssocStep, now: SimTime) {
        loop {
            match step {
                AssocStep::Wait(at) => {
                    let r = self.roam.as_mut().expect("roaming");
                    r.step_token[flow] = r.step_token[flow].wrapping_add(1);
                    let token = r.step_token[flow];
                    self.sched
                        .schedule_at(at.max(now), Event::RoamStep { flow, token });
                    return;
                }
                AssocStep::Attempt { cell, .. } => {
                    let p = self.cfg.roam.assoc_fail_prob;
                    let ok = p <= 0.0 || !self.roam.as_mut().expect("roaming").rng.chance(p);
                    let next = self.roam.as_mut().expect("roaming").machines[flow]
                        .as_mut()
                        .expect("roaming")
                        .on_assoc_result(ok, now);
                    match next {
                        None => {
                            self.complete_reassociation(flow, cell, now);
                            return;
                        }
                        Some(s) => step = s,
                    }
                }
                AssocStep::GiveUp { back_to } => {
                    self.roam.as_mut().expect("roaming").machines[flow]
                        .as_mut()
                        .expect("roaming")
                        .on_gave_up();
                    self.complete_reassociation(flow, back_to, now);
                    return;
                }
            }
        }
    }

    /// Finish a handoff onto `cell`: re-key the drivers, renegotiate the
    /// HACK capability with the new AP, lift the blackout, and re-inject
    /// parked traffic.
    fn complete_reassociation(&mut self, flow: usize, cell: usize, now: SimTime) {
        let client = self.layout.client(flow);
        let old_cell = self.cur_cell_of_flow(flow);
        let old_ap = self.layout.cells[old_cell].ap;
        let new_ap = self.layout.cells[cell].ap;
        // Driver state follows the association: the flow's compress
        // sides are re-keyed to the new AP. Stats survive the move; the
        // ROHC contexts were already dropped at disassociation.
        if new_ap != old_ap {
            if let Some(side) = self.compress.remove(&(client.0, old_ap.0)) {
                self.compress.insert((client.0, new_ap.0), side);
            }
            if let Some(mut side) = self.compress.remove(&(old_ap.0, client.0)) {
                side.set_trace(self.trace.clone(), new_ap.0);
                self.compress.insert((new_ap.0, client.0), side);
            }
        }
        // Retune the radio: the client joins the new cell's interference
        // domain (channel) — without this, the new AP's frames would
        // never reach it.
        self.medium.retune_station(client, cell as u32);
        // Fresh capability handshake, in band with the re-association:
        // HACK may legally flip off (incapable AP) and back on here.
        let req = self.stations[client.0 as usize].assoc_request();
        let resp = self.stations[new_ap.0 as usize].on_assoc_request(&req);
        self.stations[client.0 as usize].on_assoc_response(&resp);
        let negotiated = self.stations[client.0 as usize].hack_negotiated(new_ap) == Some(true);
        {
            let r = self.roam.as_mut().expect("roaming");
            r.cur_cell[flow] = cell;
            r.roams += 1;
            if let Some(mon) = r.monitors[flow].as_mut() {
                mon.on_associated(now);
            }
        }
        hack_trace::trace_ev!(
            self.trace,
            now.as_nanos(),
            client.0,
            hack_trace::Event::MacReassociated {
                flow: flow as u32,
                ap: new_ap.0,
                hack: negotiated
            }
        );
        if !negotiated {
            // Incapable new AP: the drivers must never hold an ACK
            // against a peer that cannot decode it.
            for key in [(client.0, new_ap.0), (new_ap.0, client.0)] {
                if let Some(side) = self.compress.get_mut(&key) {
                    let dacts = side.force_native(now);
                    self.apply_driver(StationId(key.0), StationId(key.1), dacts, now);
                }
            }
        }
        if flow < self.supervisors.len() {
            let acts = self.supervisors[flow].on_reassociated(negotiated, now);
            self.apply_supervisor(flow, acts, now);
        }
        for ep in self.flows[flow].ep_range() {
            if let Some(conn) = self.endpoints.get_mut(ep).and_then(|e| e.conn.as_mut()) {
                conn.unclamp_rto_backoff();
            }
        }
        // Lift the blackout: parked traffic flows through the new
        // association (ACKs back through the re-keyed drivers).
        let parked = std::mem::take(&mut self.roam.as_mut().expect("roaming").parked[flow]);
        for (upstream, pkt) in parked {
            if upstream {
                self.wireless_out(client, new_ap, pkt, now);
            } else {
                self.ap_downstream(new_ap, pkt, now);
            }
        }
    }

    fn start_flow(&mut self, flow: usize, now: SimTime) {
        hack_trace::trace_ev!(
            self.trace,
            now.as_nanos(),
            self.layout.client(flow).0,
            hack_trace::Event::SimFlowStart { flow: flow as u32 }
        );
        match self.flows[flow].model {
            TrafficModel::UdpDownload => self.top_up_udp(flow, now),
            TrafficModel::Cbr(_) => self.pace_on(flow, now),
            TrafficModel::OnOff(_) => self.on_pace_toggle(flow, now),
            TrafficModel::ShortFlows(_) => self.start_short_transfer(flow, true, now),
            TrafficModel::BulkDownload | TrafficModel::BulkUpload => {
                self.open_initiator(self.flows[flow].ep_base, now);
            }
            TrafficModel::Bidirectional => {
                let base = self.flows[flow].ep_base;
                self.open_initiator(base, now);
                self.open_initiator(base + 2, now);
            }
        }
    }

    /// Open the client-side (initiator) connection at endpoint `ep` and
    /// route its SYN.
    fn open_initiator(&mut self, ep: usize, now: SimTime) {
        let flow = self.endpoints[ep].flow;
        let (conn, pkts) = Connection::client(
            self.endpoints[ep].tcp_cfg.clone(),
            self.endpoints[ep].tuple,
            self.endpoints[ep].iss,
            now,
        );
        let mut conn = conn;
        conn.set_budget(self.endpoints[ep].budget);
        conn.set_trace(self.trace.clone(), self.layout.client(flow).0);
        self.endpoints[ep].conn = Some(conn);
        self.route_out(ep, pkts, now);
        self.resched_tcp(ep, now);
    }

    // ------------------------------------------------------------------
    // Short-flow lifecycle
    // ------------------------------------------------------------------

    /// Begin a short-flow transfer. `first` opens the initial
    /// connection; later transfers either reuse it (persistent mode) or
    /// re-key onto a fresh five-tuple.
    fn start_short_transfer(&mut self, flow: usize, first: bool, now: SimTime) {
        let base = self.flows[flow].ep_base;
        let server = base + 1;
        let (size, reuse) = {
            let f = &mut self.flows[flow];
            let cfg = f.short.as_ref().expect("short state").cfg;
            let rng = f.rng.as_mut().expect("short flows draw");
            (cfg.sizes.sample(rng), cfg.reuse)
        };
        if first {
            // Arm the server with the first response, then open the
            // client connection whose SYN starts the exchange.
            {
                let conn = self.endpoints[server].conn.as_mut().expect("server conn");
                conn.set_budget(SendBudget::Bytes(size));
            }
            let st = self.flows[flow].short.as_mut().expect("short state");
            st.target = size;
            st.in_transfer = true;
            st.started = now;
            self.open_initiator(base, now);
        } else if reuse {
            // Persistent connection: extend the server's cumulative
            // budget and kick its send path.
            let (total, outputs) = {
                let conn = self.endpoints[server].conn.as_mut().expect("server conn");
                let total = conn.extend_budget(size);
                (total, conn.poll_send(now))
            };
            let st = self.flows[flow].short.as_mut().expect("short state");
            st.target = total;
            st.in_transfer = true;
            st.started = now;
            self.route_out(server, outputs, now);
            self.resched_tcp(server, now);
        } else {
            self.reopen_short(flow, size, now);
        }
        // A degenerate (zero-byte) target is satisfied the moment it is
        // armed: no packet will ever arrive to drive the progress check,
        // so run it eagerly or the flow wedges with `in_transfer` set.
        self.check_short_progress(flow, now);
    }

    /// Re-key a short flow onto a fresh five-tuple (no-reuse mode): the
    /// previous connection pair, its timers, its routing entries, and
    /// its ROHC contexts all go away; the next transfer starts with a
    /// brand-new handshake and fresh ISNs.
    fn reopen_short(&mut self, flow: usize, size: u64, now: SimTime) {
        let base = self.flows[flow].ep_base;
        let server = base + 1;
        let client_sid = self.layout.client(flow);
        let cur_ap = self.cur_ap_of_flow(flow);
        let old = self.endpoints[base].tuple;
        let old_rev = old.reversed();
        self.ep_by_tuple.remove(&old);
        self.ep_by_tuple.remove(&old_rev);
        for ep in [base, server] {
            self.endpoints[ep].timer_at = None;
            self.tcp_timers.cancel(ep as u32);
        }
        for key in [(client_sid.0, cur_ap.0), (cur_ap.0, client_sid.0)] {
            if let Some(side) = self.compress.get_mut(&key) {
                side.drop_context(&old);
                side.drop_context(&old_rev);
            }
        }
        for sid in [client_sid.0 as usize, cur_ap.0 as usize] {
            self.decompress[sid].drop_context(&old);
            self.decompress[sid].drop_context(&old_rev);
        }
        let generation = {
            let st = self.flows[flow].short.as_mut().expect("short state");
            st.generation += 1;
            st.generation
        };
        // Same client IP and server port (they identify the flow); a
        // per-generation source port keeps every five-tuple distinct.
        let tuple = FiveTuple {
            src_port: 40_000u16
                .wrapping_add(flow as u16)
                .wrapping_add((generation as u16).wrapping_mul(613)),
            ..old
        };
        let iss_c = (10_000 + flow as u32 * 101).wrapping_add(generation.wrapping_mul(1009));
        let iss_s = (90_000 + flow as u32 * 103).wrapping_add(generation.wrapping_mul(1013));
        {
            let e = &mut self.endpoints[base];
            e.tuple = tuple;
            e.iss = iss_c;
            e.conn = None;
            e.delivered_recorded = 0;
            e.timeouts_seen = 0;
            e.est_win = None;
            e.est_bad_windows = 0;
        }
        let mut server_conn =
            Connection::server(self.endpoints[server].tcp_cfg.clone(), tuple.reversed(), iss_s);
        server_conn.set_budget(SendBudget::Bytes(size));
        server_conn.set_trace(
            self.trace.clone(),
            if self.cfg.server_at_ap {
                cur_ap.0
            } else {
                u32::MAX
            },
        );
        {
            let e = &mut self.endpoints[server];
            e.tuple = tuple.reversed();
            e.conn = Some(server_conn);
            e.delivered_recorded = 0;
            e.timeouts_seen = 0;
        }
        self.ep_by_tuple.insert(tuple, base);
        self.ep_by_tuple.insert(tuple.reversed(), server);
        {
            let st = self.flows[flow].short.as_mut().expect("short state");
            st.target = size;
            st.in_transfer = true;
            st.started = now;
        }
        self.open_initiator(base, now);
    }

    /// A short flow's receiver made progress: when the in-flight
    /// transfer has fully arrived, log its FCT and schedule the next
    /// one after a think gap.
    fn check_short_progress(&mut self, flow: usize, now: SimTime) {
        let base = self.flows[flow].ep_base;
        let delivered = self.endpoints[base]
            .conn
            .as_ref()
            .map_or(0, |c| c.bytes_delivered());
        let fct_ns = {
            let st = match self.flows[flow].short.as_mut() {
                Some(s) => s,
                None => return,
            };
            if !st.in_transfer || delivered < st.target {
                return;
            }
            st.in_transfer = false;
            now.saturating_duration_since(st.started).as_nanos()
        };
        let class = self.flows[flow].model.class().code() as usize;
        self.class_fct[class].record(fct_ns);
        self.class_transfers[class] += 1;
        let gap = {
            let f = &mut self.flows[flow];
            let st = f.short.as_ref().expect("short state");
            let rng = f.rng.as_mut().expect("short flows draw");
            st.cfg.think.sample(rng)
        };
        let at = now + gap;
        if at <= self.end {
            self.sched.schedule_at(at, Event::FlowRestart(flow));
        }
    }

    /// A short flow's think gap elapsed: begin the next transfer.
    fn on_flow_restart(&mut self, flow: usize, now: SimTime) {
        let idle = self.flows[flow]
            .short
            .as_ref()
            .is_some_and(|st| !st.in_transfer);
        if idle {
            self.start_short_transfer(flow, false, now);
        }
    }

    // ------------------------------------------------------------------
    // Paced UDP (CBR / on-off) sources
    // ------------------------------------------------------------------

    /// Begin (or resume) a paced on-period: bump the tick token and emit
    /// the first datagram immediately.
    fn pace_on(&mut self, flow: usize, now: SimTime) {
        let token = {
            let pace = self.flows[flow].pace.as_mut().expect("paced flow");
            pace.on = true;
            pace.tick_token = pace.tick_token.wrapping_add(1);
            pace.tick_token
        };
        self.on_pace_tick(flow, token, now);
    }

    /// Emit one paced datagram and schedule the next tick.
    fn on_pace_tick(&mut self, flow: usize, token: u32, now: SimTime) {
        let (ident, payload, interval) = {
            let Some(pace) = self.flows[flow].pace.as_mut() else {
                return;
            };
            if pace.tick_token != token || !pace.on {
                return;
            }
            pace.ident = pace.ident.wrapping_add(1);
            pace.sent_at.insert(pace.ident, now);
            pace.order.push_back(pace.ident);
            // Bound the in-flight table: datagrams lost in the air never
            // come back for their timestamp.
            if pace.order.len() > 4096 {
                if let Some(oldest) = pace.order.pop_front() {
                    pace.sent_at.remove(&oldest);
                }
            }
            (pace.ident, pace.payload, pace.interval)
        };
        let pkt = Ipv4Packet {
            src: SERVER_IP,
            dst: self.layout.client_ip(flow),
            ident,
            ttl: 64,
            transport: Transport::Udp {
                src_port: 5_002,
                dst_port: 41_000 + flow as u16,
                payload_len: payload,
            },
        };
        let cell = self.cur_cell_of_flow(flow);
        let arrive = self.wired[cell].send(true, &pkt, now);
        self.sched.schedule_at(
            arrive,
            Event::WiredDeliver {
                cell,
                to_ap: true,
                pkt,
            },
        );
        let next = now + interval;
        if next <= self.end {
            self.sched.schedule_at(next, Event::PaceTick { flow, token });
        }
    }

    /// Flip an on/off source between its periods (also primes the first
    /// on-period at flow start).
    fn on_pace_toggle(&mut self, flow: usize, now: SimTime) {
        let TrafficModel::OnOff(o) = self.flows[flow].model else {
            return;
        };
        let (turn_on, dur) = {
            let f = &mut self.flows[flow];
            let rng = f.rng.as_mut().expect("on/off draws");
            let pace = f.pace.as_mut().expect("paced flow");
            if pace.on {
                pace.on = false;
                (false, o.off.sample(rng))
            } else {
                (true, o.on.sample(rng))
            }
        };
        if turn_on {
            self.pace_on(flow, now);
        }
        let at = now + dur;
        if at <= self.end {
            self.sched.schedule_at(at, Event::PaceToggle(flow));
        }
    }

    /// One paced datagram arrived at its client: account one-way latency
    /// and jitter into the flow's class sketches.
    fn note_pace_delivery(&mut self, flow: usize, ident: u16, now: SimTime) {
        let class = self.flows[flow].model.class().code() as usize;
        let Some(pace) = self.flows[flow].pace.as_mut() else {
            return;
        };
        let Some(sent) = pace.sent_at.remove(&ident) else {
            return;
        };
        let lat = now.saturating_duration_since(sent).as_nanos();
        let jitter = pace.last_latency.map(|p| p.abs_diff(lat));
        pace.last_latency = Some(lat);
        self.class_latency[class].record(lat);
        if let Some(j) = jitter {
            self.class_jitter[class].record(j);
        }
    }

    fn on_tx_end(&mut self, id: TxId, now: SimTime) {
        let (mut frames, aggregated, src) = self.tx_payloads.remove(&id).expect("tx payload");
        let outcome = self.medium.end_tx(id, now, &mut self.rng);

        // 1) Receptions (before idle edges: NAV first). The last detected
        // receiver takes ownership of the frame batch; earlier ones clone.
        // In the common unicast case this turns every delivered MPDU's
        // deep copy (packet + TCP options) into a move.
        let last_detected = outcome.receptions.iter().rposition(|r| r.detected);
        for (ri, rec) in outcome.receptions.iter().enumerate() {
            let sid = rec.station;
            if rec.detected {
                let mut decoded: Vec<Frame<NetPacket>> = Vec::with_capacity(rec.mpdus.len());
                let mut fcs_bad = 0u32;
                let status_of = |mpdus: &[MpduStatus], i: usize| {
                    mpdus.get(i).copied().unwrap_or(MpduStatus::Lost)
                };
                if Some(ri) == last_detected {
                    for (i, f) in std::mem::take(&mut frames).into_iter().enumerate() {
                        match status_of(&rec.mpdus, i) {
                            MpduStatus::Ok => decoded.push(f),
                            MpduStatus::Lost => {}
                            MpduStatus::Corrupt { fcs_ok: false } => fcs_bad += 1,
                            // The flip escaped the FCS region: deliver the
                            // frame with one bit flipped in its blob
                            // extension (or unchanged when there is no blob
                            // — the flip landed in padding).
                            MpduStatus::Corrupt { fcs_ok: true } => {
                                decoded.push(self.corrupt_frame(f));
                            }
                        }
                    }
                } else {
                    for (i, f) in frames.iter().enumerate() {
                        match status_of(&rec.mpdus, i) {
                            MpduStatus::Ok => decoded.push(f.clone()),
                            MpduStatus::Lost => {}
                            MpduStatus::Corrupt { fcs_ok: false } => fcs_bad += 1,
                            MpduStatus::Corrupt { fcs_ok: true } => {
                                decoded.push(self.corrupt_frame(f.clone()));
                            }
                        }
                    }
                }
                if fcs_bad > 0 {
                    let acts = self.stations[sid.0 as usize].on_rx_corrupt(src, fcs_bad, now);
                    self.apply(sid, acts, now);
                    if !self.supervisors.is_empty() {
                        if let Some(flow) = self.sup_flow(sid, src) {
                            self.sup_signal(flow, HealthSignal::FcsBad, now);
                        }
                    }
                }
                if !decoded.is_empty() {
                    let acts = self.stations[sid.0 as usize].on_rx_ppdu(decoded, aggregated, now);
                    self.apply(sid, acts, now);
                } else if fcs_bad == 0 {
                    let acts = self.stations[sid.0 as usize].on_rx_garbage(now);
                    self.apply(sid, acts, now);
                }
            } else {
                let acts = self.stations[sid.0 as usize].on_rx_garbage(now);
                self.apply(sid, acts, now);
            }
        }

        // 2) Idle edges for everyone who heard this PPDU and whose own
        // domain is now quiet. The idle set is snapshotted before the
        // sweep — a station resuming transmission mid-sweep does not
        // suppress later stations' edges (they learn via the synchronous
        // carrier-sense notification in `start_tx` instead), matching
        // the historical once-per-PPDU busy check on legacy worlds.
        let d = self.medium.domain_of(src);
        let mut idle = std::mem::take(&mut self.idle_buf);
        idle.clear();
        idle.extend(
            self.medium
                .listeners(d)
                .iter()
                .copied()
                .filter(|&s| !self.medium.busy_for(s)),
        );
        for &sid in &idle {
            let acts = self.stations[sid.0 as usize].on_channel_idle(now);
            self.apply(sid, acts, now);
        }
        self.idle_buf = idle;

        // 3) Transmitter bookkeeping.
        let acts = self.stations[src.0 as usize].on_tx_end(now);
        self.apply(src, acts, now);
    }

    /// Flip one deterministic-RNG-chosen bit in the frame's HACK blob
    /// extension, modelling a corruption the FCS check cannot see. Frames
    /// without a blob pass through unchanged (the flip hit padding).
    fn corrupt_frame(&mut self, mut f: Frame<NetPacket>) -> Frame<NetPacket> {
        let blob = match &mut f {
            Frame::Ack { hack, .. } | Frame::BlockAck { hack, .. } => hack.as_mut(),
            _ => None,
        };
        if let Some(b) = blob {
            if !b.bytes.is_empty() {
                let bit = self.rng.uniform(b.bytes.len() as u32 * 8);
                b.bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
        }
        f
    }

    /// Materialize MAC actions for station `sid`.
    fn apply(&mut self, sid: StationId, actions: Vec<Action<NetPacket>>, now: SimTime) {
        for act in actions {
            match act {
                Action::StartTx(desc) => self.start_tx(sid, desc, now),
                Action::SetTimer { kind, at } => {
                    let token = self.mac_timers.arm((sid.0, kind));
                    self.sched
                        .schedule_at(at.max(now), Event::MacTimer(sid, kind, token));
                }
                Action::CancelTimer { kind } => {
                    self.mac_timers.cancel((sid.0, kind));
                }
                Action::Deliver { src: _, msdu } => {
                    self.sched.schedule_at(
                        now + self.cfg.stack_delay,
                        Event::HostRx {
                            station: sid,
                            pkt: msdu.0,
                            native: true,
                        },
                    );
                }
                Action::DataReceived(info) => {
                    let key = (sid.0, info.from.0);
                    if let Some(side) = self.compress.get_mut(&key) {
                        let dacts = side.on_data_received(&info, now);
                        self.apply_driver(sid, info.from, dacts, now);
                        self.drain_driver_health(sid, info.from, now);
                    }
                }
                Action::ResponseSent {
                    to,
                    kind: _,
                    attached_blob,
                } => {
                    let key = (sid.0, to.0);
                    if let Some(side) = self.compress.get_mut(&key) {
                        let dacts = side.on_response_sent(attached_blob, now);
                        // Opportunistic: withdraw native twins that rode.
                        if side.mode() == HackMode::Opportunistic && attached_blob {
                            let idents = side.ridden_idents();
                            if !idents.is_empty() {
                                self.stations[sid.0 as usize].withdraw_unsent(to, |m| {
                                    m.is_pure_tcp_ack() && idents.contains(&m.ip().ident)
                                });
                            }
                        }
                        self.apply_driver(sid, to, dacts, now);
                    }
                }
                Action::ResponseReceived {
                    from,
                    blob,
                    acked: _,
                    acked_msdus,
                } => {
                    let sup_flow = if self.supervisors.is_empty() {
                        None
                    } else {
                        self.sup_flow(sid, from)
                    };
                    let had_blob = blob.is_some();
                    if let Some(blob) = blob {
                        let before = self.decompress[sid.0 as usize].stats().clone();
                        // Zero-copy decode: ACKs are scheduled as they
                        // decompress straight out of the blob bytes — no
                        // intermediate packet Vec.
                        let side = &mut self.decompress[sid.0 as usize];
                        let sched = &mut self.sched;
                        let stack_delay = self.cfg.stack_delay;
                        side.on_blob_with(&blob.bytes, now, |pkt| {
                            sched.schedule_at(
                                now + stack_delay,
                                Event::HostRx {
                                    station: sid,
                                    pkt,
                                    native: false,
                                },
                            );
                        });
                        if let Some(flow) = sup_flow {
                            // Blob post-mortem for the supervisor: CRC
                            // hits, context damage, and clean decodes.
                            let after = self.decompress[sid.0 as usize].stats();
                            let crc = after.crc_failures - before.crc_failures;
                            let repair = (after.no_context + after.malformed)
                                - (before.no_context + before.malformed);
                            let decoded = after.decompressed - before.decompressed;
                            for _ in 0..crc {
                                self.sup_signal(flow, HealthSignal::RohcCrcFailure, now);
                            }
                            for _ in 0..repair {
                                self.sup_signal(flow, HealthSignal::RohcContextRepair, now);
                            }
                            for _ in 0..decoded {
                                self.sup_signal(flow, HealthSignal::BlobDecoded, now);
                            }
                        }
                    }
                    if let Some(flow) = sup_flow {
                        if !had_blob {
                            // Plain LL ACK exchange completed fine.
                            self.sup_signal(flow, HealthSignal::LlAckOk, now);
                        }
                    }
                    // Delivered natives advance the compressor floor (and
                    // in Opportunistic mode cancel held twins).
                    let key = (sid.0, from.0);
                    if let Some(side) = self.compress.get_mut(&key) {
                        // The driver ignores non-ACK MSDUs itself, so the
                        // batch passes through without a filtered clone.
                        if acked_msdus.iter().any(|m| m.is_pure_tcp_ack()) {
                            let dacts = side.on_natives_delivered(&acked_msdus);
                            self.apply_driver(sid, from, dacts, now);
                        }
                    }
                    // UDP source refill (backlog-fed flows only — paced
                    // sources keep their own clock).
                    if self.layout.is_ap(sid) {
                        if let Some(flow) = self.flow_of_client(from) {
                            if matches!(self.flows[flow].model, TrafficModel::UdpDownload) {
                                self.top_up_udp(flow, now);
                            }
                        }
                    }
                }
                Action::BarReceived { .. } => {}
                Action::MsduDropped { dst, .. } => {
                    if self.layout.is_ap(sid) {
                        if let Some(flow) = self.flow_of_client(dst) {
                            if matches!(self.flows[flow].model, TrafficModel::UdpDownload) {
                                self.top_up_udp(flow, now);
                            }
                        }
                    }
                }
                Action::BarExhausted { .. } => {}
            }
        }
    }

    fn start_tx(&mut self, sid: StationId, desc: TxDescriptor<NetPacket>, now: SimTime) {
        let mpdu_lens: Vec<u32> = desc.frames.iter().map(Frame::wire_len).collect();
        let dst = desc.frames.first().map(Frame::dst);
        let control =
            desc.is_response || matches!(desc.frames.first(), Some(Frame::BlockAckReq { .. }));
        let meta = PpduMeta {
            src: sid,
            dst,
            rate: desc.rate,
            mpdu_lens,
            control,
            duration: desc.duration,
        };
        let id = self.medium.begin_tx(meta, now);
        self.tx_payloads
            .insert(id, (desc.frames, desc.aggregated, sid));
        self.sched
            .schedule_at(now + desc.duration, Event::TxEnd(id));
        // Carrier sense: everyone in an interfering domain hears the
        // medium go busy (every station, on legacy single-domain worlds).
        let d = self.medium.domain_of(sid);
        for i in 0..self.medium.listeners(d).len() {
            let other = self.medium.listeners(d)[i];
            if other != sid {
                let acts = self.stations[other.0 as usize].on_channel_busy(now);
                self.apply(other, acts, now);
            }
        }
    }

    fn apply_driver(
        &mut self,
        sid: StationId,
        peer: StationId,
        dacts: Vec<DriverAction>,
        now: SimTime,
    ) {
        for d in dacts {
            match d {
                DriverAction::SendNative(pkt) => {
                    let acts = self.stations[sid.0 as usize].enqueue(peer, NetPacket(pkt), now);
                    self.apply(sid, acts, now);
                }
                DriverAction::InstallBlob { bytes, generation } => {
                    self.sched.schedule_at(
                        now + self.cfg.dma_delay,
                        Event::InstallBlob {
                            station: sid,
                            peer,
                            bytes,
                            generation,
                        },
                    );
                }
                DriverAction::ClearBlob => {
                    let removed = self.stations[sid.0 as usize].clear_hack_blob(peer);
                    if let Some(old) = removed {
                        if let Some(side) = self.compress.get_mut(&(sid.0, peer.0)) {
                            side.recycle_blob(old.bytes);
                        }
                    }
                }
                DriverAction::SetFlushTimer(at) => {
                    let token = self.flush_timers.arm((sid.0, peer.0));
                    self.sched
                        .schedule_at(at.max(now), Event::HackFlush(sid, peer, token));
                }
                DriverAction::CancelFlushTimer => {
                    // The scheduled HackFlush event still fires but its
                    // token is now stale and it is dropped silently.
                    self.flush_timers.cancel((sid.0, peer.0));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Supervisor
    // ------------------------------------------------------------------

    /// The flow a (station, peer) pair belongs to: whichever end is a
    /// client identifies it.
    fn sup_flow(&self, a: StationId, b: StationId) -> Option<usize> {
        self.flow_of_client(a).or_else(|| self.flow_of_client(b))
    }

    /// Feed one health observation to a flow's supervisor and carry out
    /// whatever it asks for.
    fn sup_signal(&mut self, flow: usize, sig: HealthSignal, now: SimTime) {
        if flow >= self.supervisors.len() {
            return;
        }
        let acts = self.supervisors[flow].on_signal(sig, now);
        if !acts.is_empty() {
            self.apply_supervisor(flow, acts, now);
        }
    }

    /// Report any health incidents the compress side recorded since the
    /// last drain (held-queue spills, stale holds).
    fn drain_driver_health(&mut self, sid: StationId, peer: StationId, now: SimTime) {
        if self.supervisors.is_empty() {
            return;
        }
        let Some(flow) = self.sup_flow(sid, peer) else {
            return;
        };
        let Some(side) = self.compress.get_mut(&(sid.0, peer.0)) else {
            return;
        };
        let health = side.drain_health();
        for _ in 0..health.spills {
            self.sup_signal(flow, HealthSignal::HeldSpill, now);
        }
        for _ in 0..health.stale_holds {
            self.sup_signal(flow, HealthSignal::HeldAckStale, now);
        }
    }

    /// Materialize supervisor actions for one flow: force/resume the
    /// native path on both compress sides, refresh ROHC contexts, arm
    /// probe timers, and emit the transition trace events.
    fn apply_supervisor(&mut self, flow: usize, actions: Vec<SupervisorAction>, now: SimTime) {
        let client = self.layout.client(flow);
        let ap = self.cur_ap_of_flow(flow);
        for act in actions {
            match act {
                SupervisorAction::ForceNative => {
                    for key in [(client.0, ap.0), (ap.0, client.0)] {
                        let dacts = self
                            .compress
                            .get_mut(&key)
                            .expect("driver exists")
                            .force_native(now);
                        self.apply_driver(StationId(key.0), StationId(key.1), dacts, now);
                    }
                }
                SupervisorAction::ReenableHack => {
                    for key in [(client.0, ap.0), (ap.0, client.0)] {
                        self.compress
                            .get_mut(&key)
                            .expect("driver exists")
                            .resume_hack();
                    }
                }
                SupervisorAction::RefreshContexts => {
                    // Drop the flow's contexts on all four ROHC parties
                    // (both orientations — downloads ACK on the client
                    // tuple, uploads on its reverse) so the next native
                    // ACK re-seeds them from scratch.
                    for fwd in self.client_tuples(flow) {
                        let rev = fwd.reversed();
                        for key in [(client.0, ap.0), (ap.0, client.0)] {
                            if let Some(side) = self.compress.get_mut(&key) {
                                side.drop_context(&fwd);
                                side.drop_context(&rev);
                            }
                        }
                        for sid in [client.0 as usize, ap.0 as usize] {
                            self.decompress[sid].drop_context(&fwd);
                            self.decompress[sid].drop_context(&rev);
                        }
                    }
                }
                SupervisorAction::ScheduleProbe(at) => {
                    let token = self.sup_timers.arm(flow as u32);
                    self.sched
                        .schedule_at(at.max(now), Event::SupProbe(flow, token));
                }
                SupervisorAction::NoteDegraded { score } => {
                    hack_trace::trace_ev!(
                        self.trace,
                        now.as_nanos(),
                        client.0,
                        hack_trace::Event::SupFlowDegraded {
                            flow: flow as u32,
                            score
                        }
                    );
                }
                SupervisorAction::NoteFallback { reason, backoff } => {
                    hack_trace::trace_ev!(
                        self.trace,
                        now.as_nanos(),
                        client.0,
                        hack_trace::Event::SupFallback {
                            flow: flow as u32,
                            reason,
                            backoff_us: backoff.as_micros()
                        }
                    );
                }
                SupervisorAction::NoteProbation { attempt } => {
                    hack_trace::trace_ev!(
                        self.trace,
                        now.as_nanos(),
                        client.0,
                        hack_trace::Event::SupProbation {
                            flow: flow as u32,
                            attempt
                        }
                    );
                }
                SupervisorAction::NoteRecovered { from } => {
                    hack_trace::trace_ev!(
                        self.trace,
                        now.as_nanos(),
                        client.0,
                        hack_trace::Event::SupRecovered {
                            flow: flow as u32,
                            from
                        }
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Host / routing
    // ------------------------------------------------------------------

    /// A packet surfaced at a wireless node's host stack.
    fn on_host_rx(&mut self, station: StationId, pkt: Ipv4Packet, native: bool, now: SimTime) {
        let at_ap = self.layout.is_ap(station);
        if at_ap && !self.endpoint_at(&pkt, station) {
            // Bridge upstream: native pure ACKs refresh this AP's
            // contexts.
            if native {
                if let Transport::Tcp(t) = &pkt.transport {
                    if t.is_pure_ack() {
                        self.decompress[station.0 as usize].on_native_ack(&pkt, now);
                    }
                }
            }
            let cell = self.layout.cell(station);
            let arrive = self.wired[cell].send(false, &pkt, now);
            self.sched.schedule_at(
                arrive,
                Event::WiredDeliver {
                    cell,
                    to_ap: false,
                    pkt,
                },
            );
            return;
        }
        if at_ap && native {
            // Server on the AP: contexts still need refreshing.
            if let Transport::Tcp(t) = &pkt.transport {
                if t.is_pure_ack() {
                    self.decompress[station.0 as usize].on_native_ack(&pkt, now);
                }
            }
        }
        self.deliver_to_endpoint(pkt, now);
    }

    /// Is there a local endpoint at `station` for this packet?
    fn endpoint_at(&self, pkt: &Ipv4Packet, station: StationId) -> bool {
        match self.ep_for(pkt) {
            Some(ep) => self.endpoints[ep].station == Some(station),
            None => false,
        }
    }

    fn ep_for(&self, pkt: &Ipv4Packet) -> Option<usize> {
        self.ep_by_tuple.get(&pkt.five_tuple().reversed()).copied()
    }

    /// Hand `pkt` to its destination endpoint (server or local stack).
    fn deliver_to_endpoint(&mut self, pkt: Ipv4Packet, now: SimTime) {
        if let Transport::Udp { payload_len, .. } = pkt.transport {
            // UDP sink: record goodput (and pacing latency) directly.
            if let Some(flow) = self.flow_of_client_ip(pkt.dst) {
                self.meters[flow].record(now, u64::from(payload_len));
                self.note_pace_delivery(flow, pkt.ident, now);
            }
            return;
        }
        let Some(ep) = self.ep_for(&pkt) else {
            return; // e.g. stray retransmission after teardown
        };
        if self.endpoints[ep].conn.is_none() {
            return; // packet for a flow that has not started
        }
        let outputs = {
            let conn = self.endpoints[ep].conn.as_mut().expect("checked");
            conn.on_packet(&pkt, now)
        };
        self.route_out(ep, outputs, now);
        self.record_delivery(ep, now);
        self.check_estimator(ep, now);
        self.resched_tcp(ep, now);
        let flow = self.endpoints[ep].flow;
        self.check_completion(flow, now);
        self.check_short_progress(flow, now);
    }

    /// Send an endpoint's outbound packets toward the peer.
    fn route_out(&mut self, ep: usize, pkts: Vec<Ipv4Packet>, now: SimTime) {
        let station = self.endpoints[ep].station;
        let flow = self.endpoints[ep].flow;
        let cell = self.cur_cell_of_flow(flow);
        for pkt in pkts {
            match station {
                None => {
                    // Wired server → the flow's AP, over that cell's
                    // backhaul.
                    let arrive = self.wired[cell].send(true, &pkt, now);
                    self.sched.schedule_at(
                        arrive,
                        Event::WiredDeliver {
                            cell,
                            to_ap: true,
                            pkt,
                        },
                    );
                }
                Some(sid) if self.layout.is_ap(sid) => {
                    // Server on the AP: straight into the downstream path.
                    self.ap_downstream(sid, pkt, now);
                }
                Some(sid) => {
                    // Client → its AP over the air; pure ACKs go through
                    // the HACK driver. Mid-handoff the radio is off the
                    // serving channel — packets park until re-association.
                    if self.flow_in_blackout(flow) {
                        self.park(flow, true, pkt);
                    } else {
                        let ap = self.cur_ap_of_flow(flow);
                        self.wireless_out(sid, ap, pkt, now);
                    }
                }
            }
        }
    }

    /// Transmit from a wireless node, routing pure TCP ACKs through the
    /// node's compress-side driver.
    fn wireless_out(&mut self, sid: StationId, peer: StationId, pkt: Ipv4Packet, now: SimTime) {
        let is_ack = matches!(&pkt.transport, Transport::Tcp(t) if t.is_pure_ack());
        let key = (sid.0, peer.0);
        if is_ack && self.compress.contains_key(&key) {
            let dacts = self
                .compress
                .get_mut(&key)
                .expect("checked")
                .on_ack_out(pkt, now);
            self.apply_driver(sid, peer, dacts, now);
            self.drain_driver_health(sid, peer, now);
        } else {
            let acts = self.stations[sid.0 as usize].enqueue(peer, NetPacket(pkt), now);
            self.apply(sid, acts, now);
        }
    }

    /// An AP forwards a packet toward its wireless client (tail-drop
    /// queue for data; ACKs ride the HACK driver).
    fn ap_downstream(&mut self, ap: StationId, pkt: Ipv4Packet, now: SimTime) {
        let Some(flow) = self.flow_of_client_ip(pkt.dst) else {
            return;
        };
        if self.flow_in_blackout(flow) {
            self.park(flow, false, pkt);
            return;
        }
        let client = self.layout.client(flow);
        let is_ack = matches!(&pkt.transport, Transport::Tcp(t) if t.is_pure_ack());
        if is_ack {
            self.wireless_out(ap, client, pkt, now);
            return;
        }
        if self.stations[ap.0 as usize].backlog(client) >= self.cfg.ap_queue_cap {
            self.ap_queue_drops += 1;
            return;
        }
        let acts = self.stations[ap.0 as usize].enqueue(client, NetPacket(pkt), now);
        self.apply(ap, acts, now);
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn flow_of_client(&self, sid: StationId) -> Option<usize> {
        self.layout.flow_of_client(sid)
    }

    fn flow_of_client_ip(&self, ip: Ipv4Addr) -> Option<usize> {
        self.ip_to_flow.get(&ip).copied()
    }

    /// Five-tuples of `flow`'s client-side endpoints (the TCP
    /// initiators), one per direction pair. Empty for UDP-class flows.
    fn client_tuples(&self, flow: usize) -> Vec<FiveTuple> {
        let client = self.layout.client(flow);
        self.flows[flow]
            .ep_range()
            .filter(|&e| self.endpoints[e].station == Some(client))
            .map(|e| self.endpoints[e].tuple)
            .collect()
    }

    fn top_up_udp(&mut self, flow: usize, now: SimTime) {
        let client = self.layout.client(flow);
        let ap = self.cur_ap_of_flow(flow);
        while self.stations[ap.0 as usize].backlog(client) < self.cfg.ap_queue_cap {
            self.udp_ident = self.udp_ident.wrapping_add(1);
            let pkt = Ipv4Packet {
                src: SERVER_IP,
                dst: self.layout.client_ip(flow),
                ident: self.udp_ident,
                ttl: 64,
                transport: Transport::Udp {
                    src_port: 5001,
                    dst_port: 40_000 + flow as u16,
                    payload_len: 1472,
                },
            };
            let acts = self.stations[ap.0 as usize].enqueue(client, NetPacket(pkt), now);
            self.apply(ap, acts, now);
        }
    }

    fn record_delivery(&mut self, ep: usize, now: SimTime) {
        let e = &mut self.endpoints[ep];
        let Some(conn) = &e.conn else { return };
        if e.is_sender {
            return;
        }
        let delivered = conn.bytes_delivered();
        if delivered > e.delivered_recorded {
            let delta = delivered - e.delivered_recorded;
            e.delivered_recorded = delivered;
            let flow = e.flow;
            self.meters[flow].record(now, delta);
        }
    }

    /// Window length for the estimator-divergence check.
    const EST_WINDOW: SimDuration = SimDuration::from_millis(250);
    /// Minimum per-window byte volume before divergence is judged.
    const EST_MIN_BYTES: u64 = 64 * 1024;
    /// Ratio between acked and sampler-delivered bytes that counts as
    /// divergent (either direction).
    const EST_RATIO: u64 = 4;
    /// Consecutive divergent windows before the supervisor hears it.
    const EST_STRIKES: u32 = 2;

    /// The congestion controller's delivery-rate sampler and the ACK
    /// clock must agree about how many bytes the network delivered.
    /// Sustained disagreement means the estimator feeding cwnd decisions
    /// has come unglued — surfaced as a health signal, and required to
    /// stay silent across the ordinary fault matrix.
    fn check_estimator(&mut self, ep: usize, now: SimTime) {
        if self.supervisors.is_empty() || !self.endpoints[ep].is_sender {
            return;
        }
        let (delivered, acked) = {
            let Some(conn) = self.endpoints[ep].conn.as_ref() else {
                return;
            };
            (conn.delivered(), conn.bytes_acked())
        };
        let e = &mut self.endpoints[ep];
        let Some((start, d0, a0)) = e.est_win else {
            e.est_win = Some((now, delivered, acked));
            return;
        };
        if now < start + Self::EST_WINDOW {
            return;
        }
        let d_delta = delivered.saturating_sub(d0);
        let a_delta = acked.saturating_sub(a0);
        e.est_win = Some((now, delivered, acked));
        let divergent = (a_delta >= Self::EST_MIN_BYTES
            && d_delta.saturating_mul(Self::EST_RATIO) < a_delta)
            || (d_delta >= Self::EST_MIN_BYTES
                && a_delta.saturating_mul(Self::EST_RATIO) < d_delta);
        if divergent {
            e.est_bad_windows += 1;
            if e.est_bad_windows >= Self::EST_STRIKES {
                e.est_bad_windows = 0;
                let flow = e.flow;
                self.sup_signal(flow, HealthSignal::EstimatorDivergence, now);
            }
        } else {
            e.est_bad_windows = 0;
        }
    }

    fn resched_tcp(&mut self, ep: usize, now: SimTime) {
        let next = self.endpoints[ep]
            .conn
            .as_ref()
            .and_then(Connection::next_timer);
        match next {
            Some(at) => {
                let at = at.max(now);
                // Same deadline as the armed event: keep it (its token is
                // still the latest) instead of flooding the queue with a
                // stale-token event per delivered segment.
                if self.endpoints[ep].timer_at == Some(at) {
                    return;
                }
                self.endpoints[ep].timer_at = Some(at);
                let token = self.tcp_timers.arm(ep as u32);
                self.sched.schedule_at(at, Event::TcpTimer(ep, token));
            }
            None => {
                self.endpoints[ep].timer_at = None;
                self.tcp_timers.cancel(ep as u32);
            }
        }
    }

    /// Is this model's transfer bounded by `cfg.transfer_bytes`?
    fn budgeted(model: TrafficModel) -> bool {
        matches!(
            model,
            TrafficModel::BulkDownload | TrafficModel::BulkUpload | TrafficModel::Bidirectional
        )
    }

    fn check_completion(&mut self, flow: usize, now: SimTime) {
        let Some(target) = self.cfg.transfer_bytes else {
            return;
        };
        if Self::budgeted(self.flows[flow].model) && self.flows[flow].done_at.is_none() {
            let range = self.flows[flow].ep_range();
            let done = range.filter(|&e| !self.endpoints[e].is_sender).all(|e| {
                self.endpoints[e]
                    .conn
                    .as_ref()
                    .is_some_and(|c| c.bytes_delivered() >= target)
            });
            if done {
                self.flows[flow].done_at = Some(now);
                let fct = now.saturating_duration_since(self.flow_start_at[flow]);
                let class = self.flows[flow].model.class().code() as usize;
                self.class_fct[class].record(fct.as_nanos());
                self.class_transfers[class] += 1;
            }
        }
        // The run ends early only when every flow is byte-budgeted and
        // every one has finished (the historical all-bulk semantics).
        let all_done = self
            .flows
            .iter()
            .all(|f| Self::budgeted(f.model) && f.done_at.is_some());
        if all_done {
            self.completion = Some(now);
        }
    }

    fn collect(self) -> RunResult {
        let n = self.layout.n_flows();
        let last_start = self
            .flow_start_at
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO);
        let measure_from = last_start + self.cfg.warmup;
        let end = self.completion.unwrap_or(self.end);
        let first_start = self.flow_start_at.first().copied().unwrap_or(SimTime::ZERO);

        let flow_goodput_mbps: Vec<f64> = self
            .meters
            .iter()
            .map(|m| m.mbps_between(measure_from, end))
            .collect();
        let flow_goodput_full_mbps: Vec<f64> = self
            .meters
            .iter()
            .map(|m| m.mbps_between(first_start, end))
            .collect();
        // Final-window goodput: the stall detector. Short enough to
        // catch a flow that died mid-run, long enough to span several
        // RTTs even on short runs.
        let final_window = SimDuration::from_millis(500).min(self.cfg.duration / 2);
        let final_from = end.saturating_duration_since(first_start).min(final_window);
        let final_from = end - final_from;
        let flow_goodput_final_mbps: Vec<f64> = self
            .meters
            .iter()
            .map(|m| m.mbps_between(final_from, end))
            .collect();

        let mac: Vec<_> = self.stations.iter().map(|s| s.stats().clone()).collect();
        let mut driver = Vec::new();
        let mut driver_ap = Vec::new();
        let mut compressor = Vec::new();
        for i in 0..n {
            // Roam-aware: the flow's driver is keyed to whichever AP it
            // ended the run associated with.
            let client = self.layout.client(i).0;
            let ap = self.cur_ap_of_flow(i).0;
            let side = &self.compress[&(client, ap)];
            driver.push(side.stats().clone());
            compressor.push(side.compressor_stats().clone());
            // The AP-side driver of the same association — the holder of
            // upload/bidirectional reverse-path ACKs.
            driver_ap.push(self.compress[&(ap, client)].stats().clone());
        }
        let within: u64 = mac.iter().map(|m| m.blob_within_aifs.get()).sum();
        let beyond: u64 = mac.iter().map(|m| m.blob_beyond_aifs.get()).sum();
        let blob_within_aifs = if within + beyond == 0 {
            1.0
        } else {
            within as f64 / (within + beyond) as f64
        };

        let mut sender_tcp = Vec::new();
        let mut receiver_tcp = Vec::new();
        if !self.endpoints.is_empty() {
            // Per-flow primary-direction TCP stats: the first sender /
            // receiver endpoint of the flow's range (defaults for
            // endpoint-less UDP-class flows in mixed worlds).
            for flow in 0..n {
                let stats_of = |sender: bool| {
                    self.flows[flow]
                        .ep_range()
                        .find(|&e| self.endpoints[e].is_sender == sender)
                        .and_then(|e| self.endpoints[e].conn.as_ref())
                        .map(|c| c.stats().clone())
                        .unwrap_or_default()
                };
                sender_tcp.push(stats_of(true));
                receiver_tcp.push(stats_of(false));
            }
        }

        let mut classes = Vec::new();
        for class in TrafficClass::ALL {
            let idx: Vec<usize> = (0..n)
                .filter(|&i| self.flows[i].model.class() == class)
                .collect();
            if idx.is_empty() {
                continue;
            }
            let c = class.code() as usize;
            classes.push(ClassReport {
                class,
                flows: idx.len(),
                transfers: self.class_transfers[c],
                goodput_mbps: idx.iter().map(|&i| flow_goodput_mbps[i]).sum(),
                fct: self.class_fct[c].clone(),
                latency: self.class_latency[c].clone(),
                jitter: self.class_jitter[c].clone(),
            });
        }
        let flow_completion: Vec<Option<SimTime>> =
            self.flows.iter().map(|f| f.done_at).collect();

        RunResult {
            events_dispatched: self.sched.dispatched(),
            aggregate_goodput_mbps: flow_goodput_mbps.iter().sum(),
            flow_goodput_mbps,
            flow_goodput_full_mbps,
            flow_completion,
            classes,
            mac,
            driver,
            driver_ap,
            compressor,
            decompressor: {
                // Aggregate across every AP's decompressor (the single
                // AP's stats, verbatim, on legacy worlds).
                let mut dec = DecompressStats::default();
                for c in &self.layout.cells {
                    dec.merge(self.decompress[c.ap.0 as usize].stats());
                }
                dec
            },
            ppdus: self.medium.completed(),
            collisions: self.medium.collisions(),
            ap_queue_drops: self.ap_queue_drops,
            sender_tcp,
            receiver_tcp,
            blob_within_aifs,
            supervisor: self
                .supervisors
                .iter()
                .map(FlowSupervisor::report)
                .collect(),
            flow_goodput_final_mbps,
            roams: self.roam.as_ref().map_or(0, |r| r.roams),
        }
    }
}

/// Run one scenario to completion.
///
/// Thin shim over [`World::builder`]`(cfg).run()` (use that in new
/// code).
pub fn run(cfg: ScenarioConfig) -> RunResult {
    World::builder(cfg).run()
}

/// Run one scenario to completion with a structured-event trace sink
/// attached to every layer.
///
/// Thin shim over [`World::builder`]`(cfg).trace(trace).run()` (use
/// that in new code).
pub fn run_traced(cfg: ScenarioConfig, trace: TraceHandle) -> RunResult {
    World::builder(cfg).trace(trace).run()
}
