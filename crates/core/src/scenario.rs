//! Scenario configuration and results — the experiment-facing API.

use hack_mac::MacStats;
use hack_phy::{CorruptModel, GeParams};
use hack_rohc::{CompressStats, DecompressStats};
use hack_sim::{QueueKind, SimDuration, SimTime};
use hack_tcp::TcpStats;

use crate::driver::{CompressSideStats, HackMode, DEFAULT_HELD_CAP};
use crate::supervisor::{SupervisorConfig, SupervisorReport};

/// Which 802.11 flavour the cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Standard {
    /// 802.11a DCF, single MPDUs + ACKs.
    Dot11a {
        /// PHY rate in Mbps (6–54).
        rate_mbps: u64,
    },
    /// 802.11n EDCA with A-MPDU aggregation + Block ACKs.
    Dot11n {
        /// PHY rate in Mbps (HT40/SGI grid).
        rate_mbps: u64,
    },
}

/// The offered traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// Bulk TCP download (server/AP → clients) — the paper's main case.
    TcpDownload,
    /// Bulk TCP upload (clients → server) — the "wireless backup"
    /// scenario; HACK runs symmetrically at the AP.
    TcpUpload,
    /// Saturating unidirectional UDP download (the capacity baseline).
    UdpDownload,
}

/// Stochastic loss environment.
#[derive(Debug, Clone, PartialEq)]
pub enum LossConfig {
    /// Lossless links (collisions still occur).
    Ideal,
    /// Fixed per-client MPDU loss probability, indexed by client.
    PerClient(Vec<f64>),
    /// SNR-driven loss with every client at the given distance from the
    /// AP (the Figure 11 sweep).
    SnrDistance(f64),
    /// Gilbert–Elliott bursty loss, identical parameters on every link
    /// (fading clusters losses; same mean rate as an i.i.d. model with
    /// [`GeParams::expected_loss`]).
    Burst(GeParams),
}

/// One scheduled mid-run change to the channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelEvent {
    /// When the change takes effect, measured from simulation start.
    pub at: SimDuration,
    /// What changes.
    pub change: ChannelChange,
}

/// The kinds of mid-run channel dynamics a scenario can schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelChange {
    /// Set the global SNR offset in dB (a cell-wide fade or recovery;
    /// only meaningful under [`LossConfig::SnrDistance`]).
    SnrOffsetDb(f64),
    /// Set one client's fixed per-MPDU loss rate (loss-rate step).
    ClientLoss {
        /// Client index (0-based).
        client: usize,
        /// New per-MPDU loss probability.
        per: f64,
    },
    /// Move one client to new coordinates in metres (station mobility;
    /// only meaningful when a propagation channel is modelled).
    MoveClient {
        /// Client index (0-based).
        client: usize,
        /// New x coordinate (m).
        x: f64,
        /// New y coordinate (m).
        y: f64,
    },
}

/// Full description of one simulation run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// MAC/PHY flavour and rate.
    pub standard: Standard,
    /// Number of wireless clients.
    pub n_clients: usize,
    /// HACK variant at every compress side.
    pub hack_mode: HackMode,
    /// Traffic pattern.
    pub traffic: TrafficKind,
    /// TCP delayed ACK at receivers.
    pub delayed_ack: bool,
    /// TCP sender lives on the AP itself (the SoRa testbed) instead of
    /// behind the wired backhaul (the §4.3 simulations).
    pub server_at_ap: bool,
    /// Per-client AP transmit-queue capacity in packets (§4.3 sizes this
    /// at 126 = three 42-packet batches).
    pub ap_queue_cap: usize,
    /// Loss environment.
    pub loss: LossConfig,
    /// Corrupted-delivery fault injection (`None` = plain drops).
    pub corrupt: Option<CorruptModel>,
    /// Scheduled mid-run channel dynamics, applied in `at` order.
    pub dynamics: Vec<ChannelEvent>,
    /// Host network-stack turnaround (data in → ACK out). Must exceed
    /// SIFS — that gap is the premise of the whole design (§2.2).
    pub stack_delay: SimDuration,
    /// Driver→NIC DMA latency for compressed-ACK descriptors (§3.3.1).
    pub dma_delay: SimDuration,
    /// Wall-clock length of the run.
    pub duration: SimDuration,
    /// Per-flow transfer size; `None` = saturating flow for the whole
    /// run.
    pub transfer_bytes: Option<u64>,
    /// Gap between successive clients' flow starts (mitigates phase
    /// effects, §4.3).
    pub stagger: SimDuration,
    /// Steady-state measurement starts this long after the *last* flow
    /// start.
    pub warmup: SimDuration,
    /// RNG seed (equal seeds ⇒ identical runs).
    pub seed: u64,
    /// Apply the SoRa radio quirks (late LL ACKs + stretched timeout).
    pub sora_quirks: bool,
    /// Receiver-advertised TCP window in bytes. The testbed-era default
    /// (128 KB) keeps a single flow from bloating the AP queue past the
    /// minimum RTO; the ns-3 experiments use a 1 MB window with the
    /// 126-packet AP queue doing the limiting.
    pub rcv_window: u32,
    /// Disable the §3.4 SYNC-bit retention machinery (ablation only).
    pub disable_sync: bool,
    /// Override the TXOP limit (ablation; `None` = the standard 4 ms).
    pub txop_limit: Option<SimDuration>,
    /// Override the MAC retry limit (ablation; `None` = the standard 7).
    pub retry_limit: Option<u32>,
    /// Event-queue implementation for the run. Both kinds produce the
    /// identical event order (same seed ⇒ byte-identical trace digest);
    /// the calendar queue is the fast default, the heap the reference.
    pub queue: QueueKind,
    /// Per-flow HACK supervisor (health monitoring + graceful fallback
    /// to native ACKs). `None` disables supervision entirely — the
    /// pre-supervisor behaviour, byte-identical traces included.
    pub supervisor: Option<SupervisorConfig>,
    /// Per-client HACK capability advertised at association time,
    /// indexed by client; missing entries default to capable. An
    /// incapable client negotiates HACK off with the AP and its flow
    /// runs native ACKs permanently.
    pub client_hack_capable: Vec<bool>,
    /// Bound on each compress side's held-ACK queue; the oldest held
    /// ACK spills to the native path when a new hold would exceed it.
    pub held_cap: usize,
}

impl ScenarioConfig {
    /// The paper's §4.3 802.11n download setup: wired server, MORE DATA
    /// HACK off by default (set `hack_mode`), 126-packet per-client AP
    /// queue.
    pub fn dot11n_download(rate_mbps: u64, n_clients: usize, hack_mode: HackMode) -> Self {
        ScenarioConfig {
            standard: Standard::Dot11n { rate_mbps },
            n_clients,
            hack_mode,
            traffic: TrafficKind::TcpDownload,
            delayed_ack: true,
            server_at_ap: false,
            ap_queue_cap: 126,
            loss: LossConfig::Ideal,
            corrupt: None,
            dynamics: Vec::new(),
            stack_delay: SimDuration::from_micros(30),
            dma_delay: SimDuration::from_micros(15),
            duration: SimDuration::from_secs(10),
            transfer_bytes: None,
            stagger: SimDuration::from_millis(500),
            warmup: SimDuration::from_secs(1),
            seed: 1,
            sora_quirks: false,
            rcv_window: 1 << 20,
            disable_sync: false,
            txop_limit: None,
            retry_limit: None,
            queue: QueueKind::Calendar,
            supervisor: None,
            client_hack_capable: Vec::new(),
            held_cap: DEFAULT_HELD_CAP,
        }
    }

    /// The SoRa testbed setup (§4.1–4.2): 802.11a at 54 Mbps, sender on
    /// the AP, SoRa's late LL ACKs, client 1 lossier than client 2.
    pub fn sora_testbed(n_clients: usize, hack_mode: HackMode) -> Self {
        let per: Vec<f64> = (0..n_clients)
            .map(|i| if i == 0 { 0.025 } else { 0.02 })
            .collect();
        ScenarioConfig {
            standard: Standard::Dot11a { rate_mbps: 54 },
            n_clients,
            hack_mode,
            traffic: TrafficKind::TcpDownload,
            delayed_ack: true,
            server_at_ap: true,
            // The testbed's sender runs on the AP with an ordinary driver
            // queue ("Linux drivers usually use buffer sizes of 1000
            // packets", §4.3) — flows end up receive-window-limited, not
            // tail-drop-limited.
            ap_queue_cap: 1000,
            loss: LossConfig::PerClient(per),
            corrupt: None,
            dynamics: Vec::new(),
            stack_delay: SimDuration::from_micros(30),
            dma_delay: SimDuration::from_micros(15),
            duration: SimDuration::from_secs(10),
            transfer_bytes: None,
            stagger: SimDuration::from_millis(200),
            warmup: SimDuration::from_secs(1),
            seed: 1,
            sora_quirks: true,
            rcv_window: 128 * 1024,
            disable_sync: false,
            txop_limit: None,
            retry_limit: None,
            queue: QueueKind::Calendar,
            supervisor: None,
            client_hack_capable: Vec::new(),
            held_cap: DEFAULT_HELD_CAP,
        }
    }

    /// Saturating UDP baseline over the same cell.
    pub fn with_udp(mut self) -> Self {
        self.traffic = TrafficKind::UdpDownload;
        self
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-flow goodput (Mbps) over the steady-state window.
    pub flow_goodput_mbps: Vec<f64>,
    /// Aggregate steady-state goodput (Mbps).
    pub aggregate_goodput_mbps: f64,
    /// Per-flow goodput (Mbps) over the whole run including slow start
    /// (what Figure 11 averages).
    pub flow_goodput_full_mbps: Vec<f64>,
    /// Time at which every byte-budgeted flow completed, if applicable.
    pub completion: Option<SimTime>,
    /// Per-station MAC statistics (index 0 = AP, then clients).
    pub mac: Vec<MacStats>,
    /// Per-client compress-side driver statistics.
    pub driver: Vec<CompressSideStats>,
    /// Per-client compressor statistics.
    pub compressor: Vec<CompressStats>,
    /// Decompressor statistics at the AP.
    pub decompressor: DecompressStats,
    /// Completed PPDUs on the medium.
    pub ppdus: u64,
    /// Total discrete events dispatched by the scheduler (the
    /// denominator of the hot-path events/sec benchmark).
    pub events_dispatched: u64,
    /// PPDUs corrupted by collisions.
    pub collisions: u64,
    /// Packets tail-dropped at the AP queue.
    pub ap_queue_drops: u64,
    /// TCP statistics of the data senders (per flow).
    pub sender_tcp: Vec<TcpStats>,
    /// TCP statistics of the data receivers (per flow).
    pub receiver_tcp: Vec<TcpStats>,
    /// Fraction of blob-carrying LL ACKs whose blob extension fits
    /// within AIFS (the paper's 98.5 % claim, §3.3.2 fn 7).
    pub blob_within_aifs: f64,
    /// Per-flow supervisor outcomes (empty when supervision is off).
    pub supervisor: Vec<SupervisorReport>,
    /// Per-flow goodput (Mbps) over the final window of the run — the
    /// stall detector: a live flow has nonzero goodput here even under
    /// faults, a stalled one does not.
    pub flow_goodput_final_mbps: Vec<f64>,
}

impl RunResult {
    /// Table 1's row: fraction of data MPDUs needing no retries, over
    /// the AP's transmissions (the AP sends the data in downloads).
    pub fn ap_first_try_fraction(&self) -> Option<f64> {
        self.mac.first().and_then(MacStats::first_try_fraction)
    }
}
