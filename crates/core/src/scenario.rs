//! Scenario configuration and results — the experiment-facing API.

use hack_mac::{AssocConfig, MacStats};
use hack_phy::{CorruptModel, GeParams, InterferenceConfig, RoamTrigger, Waypoint};
use hack_rohc::{CompressStats, DecompressStats};
use hack_sim::{QuantileSketch, QueueKind, SimDuration, SimTime};
use hack_tcp::{CcKind, TcpStats};

use crate::driver::{CompressSideStats, HackMode, DEFAULT_HELD_CAP};
use crate::supervisor::{SupervisorConfig, SupervisorReport};
use crate::traffic::{TrafficClass, TrafficModel};

/// Which 802.11 flavour the cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Standard {
    /// 802.11a DCF, single MPDUs + ACKs.
    Dot11a {
        /// PHY rate in Mbps (6–54).
        rate_mbps: u64,
    },
    /// 802.11n EDCA with A-MPDU aggregation + Block ACKs.
    Dot11n {
        /// PHY rate in Mbps (HT40/SGI grid).
        rate_mbps: u64,
    },
}

/// The offered traffic — the closed pre-model enum.
///
/// **Deprecated** (documented, not attributed, so existing callers
/// compile warning-free — attribute lands next cycle, see DESIGN.md
/// §8): new code should use [`TrafficModel`], which every
/// `TrafficKind` converts into losslessly via `From`. Scenarios built
/// from a `TrafficKind` keep their stable hashes and trace digests
/// byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// Bulk TCP download (server/AP → clients) — the paper's main case.
    TcpDownload,
    /// Bulk TCP upload (clients → server) — the "wireless backup"
    /// scenario; HACK runs symmetrically at the AP.
    TcpUpload,
    /// Saturating unidirectional UDP download (the capacity baseline).
    UdpDownload,
}

/// Stochastic loss environment.
#[derive(Debug, Clone, PartialEq)]
pub enum LossConfig {
    /// Lossless links (collisions still occur).
    Ideal,
    /// Fixed per-client MPDU loss probability, indexed by client.
    PerClient(Vec<f64>),
    /// SNR-driven loss with every client at the given distance from the
    /// AP (the Figure 11 sweep).
    SnrDistance(f64),
    /// Gilbert–Elliott bursty loss, identical parameters on every link
    /// (fading clusters losses; same mean rate as an i.i.d. model with
    /// [`GeParams::expected_loss`]).
    Burst(GeParams),
}

/// One BSS in a dense multi-BSS deployment: where its AP sits, which
/// channel it runs, and how many clients associate with it.
///
/// An empty `ScenarioConfig::bss` means the legacy single-cell world
/// (one implicit AP, `n_clients` clients) — byte-identical to every
/// pre-dense run. A non-empty list replaces it: the world gets one AP
/// per spec, stations are numbered AP₀, its clients, AP₁, its clients, …
/// and the interference graph is derived from the placements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BssSpec {
    /// AP x coordinate (m).
    pub x: f64,
    /// AP y coordinate (m).
    pub y: f64,
    /// 2.4 GHz channel number (1–11; |Δ| ≥ 5 means orthogonal).
    pub channel: u8,
    /// Number of clients in this BSS.
    pub n_clients: usize,
}

impl BssSpec {
    /// Enterprise-floor preset: a √n×√n grid of APs at 25 m spacing with
    /// a proper 1/6/11 reuse-3 channel plan. Co-channel APs end up ≥
    /// 35 m apart (diagonal), past the default 30 m co-channel range,
    /// and 1/6/11 are mutually orthogonal — so the derived interference
    /// graph has **zero** edges and every BSS shards independently.
    pub fn enterprise_floor(n_bss: usize, clients_per_bss: usize) -> Vec<BssSpec> {
        let cols = (n_bss as f64).sqrt().ceil().max(1.0) as usize;
        (0..n_bss)
            .map(|i| {
                let (row, col) = (i / cols, i % cols);
                BssSpec {
                    x: col as f64 * 25.0,
                    y: row as f64 * 25.0,
                    // (col + 2·row) mod 3 colours every orthogonal
                    // neighbour pair differently; the surviving
                    // co-channel pairs sit on the long diagonal.
                    channel: [1, 6, 11][(col + 2 * row) % 3],
                    n_clients: clients_per_bss,
                }
            })
            .collect()
    }

    /// Apartment-block preset: APs along a corridor at 8 m spacing,
    /// channels alternating 1/6. Next-nearest neighbours share a channel
    /// 16 m apart — inside the default 30 m co-channel range — so each
    /// channel's APs chain into one interference component: the derived
    /// graph has two multi-BSS shards (odd and even units).
    pub fn apartment_block(n_bss: usize, clients_per_bss: usize) -> Vec<BssSpec> {
        (0..n_bss)
            .map(|i| BssSpec {
                x: i as f64 * 8.0,
                y: 0.0,
                channel: if i % 2 == 0 { 1 } else { 6 },
                n_clients: clients_per_bss,
            })
            .collect()
    }
}

/// One scheduled mid-run change to the channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelEvent {
    /// When the change takes effect, measured from simulation start.
    pub at: SimDuration,
    /// What changes.
    pub change: ChannelChange,
}

/// The kinds of mid-run channel dynamics a scenario can schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelChange {
    /// Set the global SNR offset in dB (a cell-wide fade or recovery;
    /// only meaningful under [`LossConfig::SnrDistance`]).
    SnrOffsetDb(f64),
    /// Set one client's fixed per-MPDU loss rate (loss-rate step).
    ClientLoss {
        /// Client index (0-based).
        client: usize,
        /// New per-MPDU loss probability.
        per: f64,
    },
    /// Move one client to new coordinates in metres (station mobility;
    /// only meaningful when a propagation channel is modelled).
    MoveClient {
        /// Client index (0-based).
        client: usize,
        /// New x coordinate (m).
        x: f64,
        /// New y coordinate (m).
        y: f64,
    },
}

/// One scheduled roam: hand `flow`'s client off to the AP of
/// `target_bss` starting at `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoamEvent {
    /// Flow (= client) index, in global numbering.
    pub flow: usize,
    /// When the roam triggers, measured from simulation start.
    pub at: SimDuration,
    /// Target BSS index in `ScenarioConfig::bss`.
    pub target_bss: usize,
}

/// A waypoint trajectory for one client; the mobility tick samples it
/// and drives `place_station`, and (with a [`RoamTrigger`] configured)
/// moves can trip SNR-based roams.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientPath {
    /// Client index (0-based, global numbering).
    pub client: usize,
    /// The path; see [`hack_phy::mobility::Trajectory`].
    pub waypoints: Vec<Waypoint>,
}

/// Station mobility and AP-roaming configuration. The default is
/// entirely inert: no schedule, no trigger, no paths — and an inert
/// roam config adds **zero** events, RNG draws, or trace records, so
/// every roam-free scenario keeps its byte-identical trace digest.
#[derive(Debug, Clone, PartialEq)]
pub struct RoamConfig {
    /// Scheduled roams, applied in `at` order. Requires a multi-BSS
    /// layout (`bss` non-empty) — the legacy single-cell world has
    /// nowhere to roam to.
    pub schedule: Vec<RoamEvent>,
    /// SNR/hysteresis roam trigger, evaluated after every station move
    /// (scheduled dynamics or waypoint ticks). `None` = never.
    pub trigger: Option<RoamTrigger>,
    /// Waypoint trajectories driving client positions.
    pub paths: Vec<ClientPath>,
    /// Sampling period for waypoint paths (and trigger evaluation along
    /// them).
    pub mobility_tick: SimDuration,
    /// Per-BSS HACK capability of the APs, indexed like `bss`; missing
    /// entries default to capable. A roam onto an incapable AP
    /// renegotiates HACK *off* for the flow until it roams again.
    pub ap_hack_capable: Vec<bool>,
    /// Association state-machine timing (scan delay, retry backoff,
    /// retry budget).
    pub assoc: AssocConfig,
    /// Probability an association attempt fails (drawn from the
    /// dedicated roam RNG fork; exercises the retry/give-up path).
    pub assoc_fail_prob: f64,
    /// RTO backoff clamp pinned on the flow's endpoints for the
    /// blackout's duration: at most this many doublings.
    pub rto_clamp_shift: u32,
    /// Per-flow bound on packets parked during a blackout; beyond it
    /// the oldest parked packet is dropped (counted as an AP queue
    /// drop).
    pub park_cap: usize,
}

impl Default for RoamConfig {
    fn default() -> Self {
        RoamConfig {
            schedule: Vec::new(),
            trigger: None,
            paths: Vec::new(),
            mobility_tick: SimDuration::from_millis(100),
            ap_hack_capable: Vec::new(),
            assoc: AssocConfig::default(),
            assoc_fail_prob: 0.0,
            rto_clamp_shift: 1,
            park_cap: 126,
        }
    }
}

impl RoamConfig {
    /// Whether this config can cause any roaming or mobility at all.
    /// Inactive configs must leave runs byte-identical to pre-roam
    /// builds.
    pub fn is_active(&self) -> bool {
        !self.schedule.is_empty() || self.trigger.is_some() || !self.paths.is_empty()
    }
}

/// Full description of one simulation run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// MAC/PHY flavour and rate.
    pub standard: Standard,
    /// Number of wireless clients.
    pub n_clients: usize,
    /// HACK variant at every compress side.
    pub hack_mode: HackMode,
    /// Default traffic model for every flow (see `traffic_mix` for
    /// per-flow overrides).
    pub traffic: TrafficModel,
    /// Per-flow traffic-model overrides, indexed by flow; flows past
    /// the end of the list (and an empty list — the default) use
    /// `traffic`. This is what makes mixed workloads first-class: a
    /// cell can run bulk HACK flows next to VoIP CBR and short flows.
    pub traffic_mix: Vec<TrafficModel>,
    /// TCP delayed ACK at receivers.
    pub delayed_ack: bool,
    /// TCP sender lives on the AP itself (the SoRa testbed) instead of
    /// behind the wired backhaul (the §4.3 simulations).
    pub server_at_ap: bool,
    /// Per-client AP transmit-queue capacity in packets (§4.3 sizes this
    /// at 126 = three 42-packet batches).
    pub ap_queue_cap: usize,
    /// Loss environment.
    pub loss: LossConfig,
    /// Corrupted-delivery fault injection (`None` = plain drops).
    pub corrupt: Option<CorruptModel>,
    /// Scheduled mid-run channel dynamics, applied in `at` order.
    pub dynamics: Vec<ChannelEvent>,
    /// Host network-stack turnaround (data in → ACK out). Must exceed
    /// SIFS — that gap is the premise of the whole design (§2.2).
    pub stack_delay: SimDuration,
    /// Driver→NIC DMA latency for compressed-ACK descriptors (§3.3.1).
    pub dma_delay: SimDuration,
    /// Wall-clock length of the run.
    pub duration: SimDuration,
    /// Per-flow transfer size; `None` = saturating flow for the whole
    /// run.
    pub transfer_bytes: Option<u64>,
    /// Gap between successive clients' flow starts (mitigates phase
    /// effects, §4.3).
    pub stagger: SimDuration,
    /// Steady-state measurement starts this long after the *last* flow
    /// start.
    pub warmup: SimDuration,
    /// RNG seed (equal seeds ⇒ identical runs).
    pub seed: u64,
    /// Apply the SoRa radio quirks (late LL ACKs + stretched timeout).
    pub sora_quirks: bool,
    /// Receiver-advertised TCP window in bytes. The testbed-era default
    /// (128 KB) keeps a single flow from bloating the AP queue past the
    /// minimum RTO; the ns-3 experiments use a 1 MB window with the
    /// 126-packet AP queue doing the limiting.
    pub rcv_window: u32,
    /// Disable the §3.4 SYNC-bit retention machinery (ablation only).
    pub disable_sync: bool,
    /// Override the TXOP limit (ablation; `None` = the standard 4 ms).
    pub txop_limit: Option<SimDuration>,
    /// Override the MAC retry limit (ablation; `None` = the standard 7).
    pub retry_limit: Option<u32>,
    /// Event-queue implementation for the run. Both kinds produce the
    /// identical event order (same seed ⇒ byte-identical trace digest);
    /// the calendar queue is the fast default, the heap the reference.
    pub queue: QueueKind,
    /// Per-flow HACK supervisor (health monitoring + graceful fallback
    /// to native ACKs). `None` disables supervision entirely — the
    /// pre-supervisor behaviour, byte-identical traces included.
    pub supervisor: Option<SupervisorConfig>,
    /// Per-client HACK capability advertised at association time,
    /// indexed by client; missing entries default to capable. An
    /// incapable client negotiates HACK off with the AP and its flow
    /// runs native ACKs permanently.
    pub client_hack_capable: Vec<bool>,
    /// Bound on each compress side's held-ACK queue; the oldest held
    /// ACK spills to the native path when a new hold would exceed it.
    pub held_cap: usize,
    /// Congestion-control algorithm at every TCP sender.
    pub cc: CcKind,
    /// Dense multi-BSS layout; empty = the legacy single-cell world
    /// (one implicit AP serving `n_clients` clients).
    pub bss: Vec<BssSpec>,
    /// Ranges deciding when two BSSs interfere (ignored when `bss` is
    /// empty).
    pub interference: InterferenceConfig,
    /// Station mobility and AP roaming (default: inert).
    pub roam: RoamConfig,
}

/// Which 802.11 flavour a [`ScenarioBuilder`] targets; the PHY rate is
/// set separately via [`ScenarioBuilder::rate_mbps`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StandardKind {
    /// 802.11a DCF, single MPDUs + ACKs.
    Dot11a,
    /// 802.11n EDCA with A-MPDU aggregation + Block ACKs.
    Dot11n,
}

/// Typed step-by-step construction of a [`ScenarioConfig`].
///
/// This is the supported way to build scenarios:
///
/// ```
/// use hack_core::{HackMode, ScenarioConfig, StandardKind};
///
/// let cfg = ScenarioConfig::builder()
///     .standard(StandardKind::Dot11n)
///     .rate_mbps(150)
///     .clients(4)
///     .hack(HackMode::MoreData)
///     .build();
/// assert_eq!(cfg.n_clients, 4);
/// ```
///
/// Every setter has the §4.3 802.11n download defaults, so only the
/// fields a scenario cares about need spelling out. The legacy
/// positional constructors
/// ([`ScenarioConfig::dot11n_download`], [`ScenarioConfig::sora_testbed`])
/// are thin shims over this builder and are kept only for source
/// compatibility.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    kind: StandardKind,
    rate_mbps: u64,
    cfg: ScenarioConfig,
}

impl ScenarioBuilder {
    /// Builder preset: the paper's §4.3 802.11n download setup (wired
    /// server, 126-packet per-client AP queue). The returned builder
    /// can be refined further before `build()`.
    pub fn dot11n_download(rate_mbps: u64, n_clients: usize, hack_mode: HackMode) -> Self {
        ScenarioConfig::builder()
            .standard(StandardKind::Dot11n)
            .rate_mbps(rate_mbps)
            .clients(n_clients)
            .hack(hack_mode)
    }

    /// Builder preset: the SoRa testbed setup (§4.1–4.2) — 802.11a at
    /// 54 Mbps, sender on the AP, SoRa's late LL ACKs, client 1
    /// lossier than client 2, 128 KB receive window. The returned
    /// builder can be refined further before `build()`.
    pub fn sora_testbed(n_clients: usize, hack_mode: HackMode) -> Self {
        let per: Vec<f64> = (0..n_clients)
            .map(|i| if i == 0 { 0.025 } else { 0.02 })
            .collect();
        ScenarioConfig::builder()
            .standard(StandardKind::Dot11a)
            .rate_mbps(54)
            .clients(n_clients)
            .hack(hack_mode)
            .server_at_ap(true)
            // The testbed's sender runs on the AP with an ordinary driver
            // queue ("Linux drivers usually use buffer sizes of 1000
            // packets", §4.3) — flows end up receive-window-limited, not
            // tail-drop-limited.
            .ap_queue_cap(1000)
            .loss(LossConfig::PerClient(per))
            .stagger(SimDuration::from_millis(200))
            .sora_quirks(true)
            .rcv_window(128 * 1024)
    }

    /// 802.11 flavour (default: [`StandardKind::Dot11n`]).
    pub fn standard(mut self, kind: StandardKind) -> Self {
        self.kind = kind;
        self
    }

    /// PHY rate in Mbps (default: 150).
    pub fn rate_mbps(mut self, rate: u64) -> Self {
        self.rate_mbps = rate;
        self
    }

    /// Number of wireless clients (default: 1).
    pub fn clients(mut self, n: usize) -> Self {
        self.cfg.n_clients = n;
        self
    }

    /// HACK variant at every compress side (default: disabled).
    pub fn hack(mut self, mode: HackMode) -> Self {
        self.cfg.hack_mode = mode;
        self
    }

    /// Default traffic model for every flow (default: bulk TCP
    /// download). Accepts a [`TrafficModel`] or, for source compat, a
    /// legacy [`TrafficKind`].
    pub fn traffic(mut self, traffic: impl Into<TrafficModel>) -> Self {
        self.cfg.traffic = traffic.into();
        self
    }

    /// Per-flow traffic-model overrides, indexed by flow; flows past
    /// the end of the list fall back to the default model (default:
    /// empty — every flow runs the default).
    pub fn traffic_mix(mut self, mix: Vec<TrafficModel>) -> Self {
        self.cfg.traffic_mix = mix;
        self
    }

    /// TCP delayed ACK at receivers (default: on).
    pub fn delayed_ack(mut self, on: bool) -> Self {
        self.cfg.delayed_ack = on;
        self
    }

    /// Put the TCP sender on the AP itself instead of behind the wired
    /// backhaul (default: behind the backhaul).
    pub fn server_at_ap(mut self, on: bool) -> Self {
        self.cfg.server_at_ap = on;
        self
    }

    /// Per-client AP transmit-queue capacity in packets (default: 126).
    pub fn ap_queue_cap(mut self, cap: usize) -> Self {
        self.cfg.ap_queue_cap = cap;
        self
    }

    /// Loss environment (default: ideal links).
    pub fn loss(mut self, loss: LossConfig) -> Self {
        self.cfg.loss = loss;
        self
    }

    /// Corrupted-delivery fault injection (default: plain drops).
    pub fn corrupt(mut self, model: CorruptModel) -> Self {
        self.cfg.corrupt = Some(model);
        self
    }

    /// Scheduled mid-run channel dynamics (default: none).
    pub fn dynamics(mut self, dynamics: Vec<ChannelEvent>) -> Self {
        self.cfg.dynamics = dynamics;
        self
    }

    /// Host network-stack turnaround (default: 30 µs).
    pub fn stack_delay(mut self, d: SimDuration) -> Self {
        self.cfg.stack_delay = d;
        self
    }

    /// Driver→NIC DMA latency (default: 15 µs).
    pub fn dma_delay(mut self, d: SimDuration) -> Self {
        self.cfg.dma_delay = d;
        self
    }

    /// Wall-clock length of the run (default: 10 s).
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.cfg.duration = d;
        self
    }

    /// Fixed per-flow transfer size (default: saturating flows).
    pub fn transfer_bytes(mut self, bytes: u64) -> Self {
        self.cfg.transfer_bytes = Some(bytes);
        self
    }

    /// Gap between successive clients' flow starts (default: 500 ms).
    pub fn stagger(mut self, d: SimDuration) -> Self {
        self.cfg.stagger = d;
        self
    }

    /// Steady-state warmup after the last flow start (default: 1 s).
    pub fn warmup(mut self, d: SimDuration) -> Self {
        self.cfg.warmup = d;
        self
    }

    /// RNG seed (default: 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Apply the SoRa radio quirks (default: off).
    pub fn sora_quirks(mut self, on: bool) -> Self {
        self.cfg.sora_quirks = on;
        self
    }

    /// Receiver-advertised TCP window in bytes (default: 1 MB).
    pub fn rcv_window(mut self, bytes: u32) -> Self {
        self.cfg.rcv_window = bytes;
        self
    }

    /// Disable the §3.4 SYNC-bit retention machinery (ablation only).
    pub fn disable_sync(mut self, off: bool) -> Self {
        self.cfg.disable_sync = off;
        self
    }

    /// Override the TXOP limit (default: the standard 4 ms).
    pub fn txop_limit(mut self, d: SimDuration) -> Self {
        self.cfg.txop_limit = Some(d);
        self
    }

    /// Override the MAC retry limit (default: the standard 7).
    pub fn retry_limit(mut self, limit: u32) -> Self {
        self.cfg.retry_limit = Some(limit);
        self
    }

    /// Event-queue implementation (default: calendar queue).
    pub fn queue(mut self, kind: QueueKind) -> Self {
        self.cfg.queue = kind;
        self
    }

    /// Enable the per-flow HACK supervisor (default: unsupervised).
    pub fn supervisor(mut self, cfg: SupervisorConfig) -> Self {
        self.cfg.supervisor = Some(cfg);
        self
    }

    /// Per-client HACK capability advertised at association (default:
    /// all capable).
    pub fn client_hack_capable(mut self, capable: Vec<bool>) -> Self {
        self.cfg.client_hack_capable = capable;
        self
    }

    /// Bound on each compress side's held-ACK queue (default:
    /// [`DEFAULT_HELD_CAP`]).
    pub fn held_cap(mut self, cap: usize) -> Self {
        self.cfg.held_cap = cap;
        self
    }

    /// Congestion-control algorithm at every TCP sender (default:
    /// NewReno, the paper's sender).
    pub fn cc(mut self, cc: CcKind) -> Self {
        self.cfg.cc = cc;
        self
    }

    /// Dense multi-BSS layout (default: empty = the legacy single-cell
    /// world). Also sets `n_clients` to the total across all BSSs, so
    /// per-flow vectors (losses, capabilities) keep their meaning.
    pub fn bss(mut self, bss: Vec<BssSpec>) -> Self {
        self.cfg.n_clients = bss.iter().map(|b| b.n_clients).sum();
        self.cfg.bss = bss;
        self
    }

    /// Interference ranges for the dense layout (default:
    /// [`InterferenceConfig::default`]).
    pub fn interference(mut self, cfg: InterferenceConfig) -> Self {
        self.cfg.interference = cfg;
        self
    }

    /// Station mobility and AP roaming (default: inert — no schedule,
    /// trigger, or paths).
    pub fn roam(mut self, roam: RoamConfig) -> Self {
        self.cfg.roam = roam;
        self
    }

    /// Convenience: just a scheduled roam list, with every other roam
    /// knob at its default.
    pub fn roam_schedule(mut self, schedule: Vec<RoamEvent>) -> Self {
        self.cfg.roam.schedule = schedule;
        self
    }

    /// Resolve the builder into a [`ScenarioConfig`].
    #[must_use]
    pub fn build(self) -> ScenarioConfig {
        let mut cfg = self.cfg;
        cfg.standard = match self.kind {
            StandardKind::Dot11a => Standard::Dot11a {
                rate_mbps: self.rate_mbps,
            },
            StandardKind::Dot11n => Standard::Dot11n {
                rate_mbps: self.rate_mbps,
            },
        };
        cfg
    }
}

impl ScenarioConfig {
    /// Start building a scenario from the §4.3 802.11n download
    /// defaults (wired server, ideal links, 126-packet AP queue,
    /// 150 Mbps, one client, HACK disabled).
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder {
            kind: StandardKind::Dot11n,
            rate_mbps: 150,
            cfg: ScenarioConfig {
                standard: Standard::Dot11n { rate_mbps: 150 },
                n_clients: 1,
                hack_mode: HackMode::Disabled,
                traffic: TrafficModel::BulkDownload,
                traffic_mix: Vec::new(),
                delayed_ack: true,
                server_at_ap: false,
                ap_queue_cap: 126,
                loss: LossConfig::Ideal,
                corrupt: None,
                dynamics: Vec::new(),
                stack_delay: SimDuration::from_micros(30),
                dma_delay: SimDuration::from_micros(15),
                duration: SimDuration::from_secs(10),
                transfer_bytes: None,
                stagger: SimDuration::from_millis(500),
                warmup: SimDuration::from_secs(1),
                seed: 1,
                sora_quirks: false,
                rcv_window: 1 << 20,
                disable_sync: false,
                txop_limit: None,
                retry_limit: None,
                queue: QueueKind::Calendar,
                supervisor: None,
                client_hack_capable: Vec::new(),
                held_cap: DEFAULT_HELD_CAP,
                cc: CcKind::Reno,
                bss: Vec::new(),
                interference: InterferenceConfig::default(),
                roam: RoamConfig::default(),
            },
        }
    }

    /// The paper's §4.3 802.11n download setup.
    #[deprecated(
        since = "0.2.0",
        note = "use ScenarioBuilder::dot11n_download(...).build() — the builder is the only supported path (DESIGN.md §8 deprecation cycle)"
    )]
    pub fn dot11n_download(rate_mbps: u64, n_clients: usize, hack_mode: HackMode) -> Self {
        ScenarioBuilder::dot11n_download(rate_mbps, n_clients, hack_mode).build()
    }

    /// The SoRa testbed setup (§4.1–4.2).
    #[deprecated(
        since = "0.2.0",
        note = "use ScenarioBuilder::sora_testbed(...).build() — the builder is the only supported path (DESIGN.md §8 deprecation cycle)"
    )]
    pub fn sora_testbed(n_clients: usize, hack_mode: HackMode) -> Self {
        ScenarioBuilder::sora_testbed(n_clients, hack_mode).build()
    }

    /// Saturating UDP baseline over the same cell.
    pub fn with_udp(mut self) -> Self {
        self.traffic = TrafficModel::UdpDownload;
        self
    }

    /// The traffic model of flow `flow`: its `traffic_mix` override if
    /// one exists, else the scenario default.
    pub fn model_of(&self, flow: usize) -> TrafficModel {
        self.traffic_mix.get(flow).copied().unwrap_or(self.traffic)
    }

    /// Whether every flow's model is expressible as a legacy
    /// [`TrafficKind`] under one scenario-wide kind — exactly the
    /// scenarios that existed before the traffic-model layer. These
    /// keep their pre-model stable hashes (and cache keys).
    pub fn legacy_traffic(&self) -> Option<TrafficKind> {
        if !self.traffic_mix.is_empty() {
            return None;
        }
        self.traffic.legacy_kind()
    }
}

/// Per-traffic-class metrics: flow-completion-time, latency, and
/// jitter percentiles from streaming [`QuantileSketch`]es, plus the
/// class's share of goodput. One entry per class with ≥ 1 flow,
/// ordered by class code.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// The flow class.
    pub class: TrafficClass,
    /// Number of flows in the class.
    pub flows: usize,
    /// Completed transfers across the class's flows (short flows
    /// complete many; a bulk flow with a byte budget completes once).
    pub transfers: u64,
    /// Aggregate steady-state goodput of the class (Mbps).
    pub goodput_mbps: f64,
    /// Flow/transfer completion times (ns). For short flows, one
    /// sample per transfer; for byte-budgeted bulk flows, one per
    /// flow.
    pub fct: QuantileSketch,
    /// Per-packet one-way latency (ns) — paced UDP classes only.
    pub latency: QuantileSketch,
    /// Per-packet latency jitter (|Δ latency|, ns) — paced UDP
    /// classes only.
    pub jitter: QuantileSketch,
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-flow goodput (Mbps) over the steady-state window.
    pub flow_goodput_mbps: Vec<f64>,
    /// Aggregate steady-state goodput (Mbps).
    pub aggregate_goodput_mbps: f64,
    /// Per-flow goodput (Mbps) over the whole run including slow start
    /// (what Figure 11 averages).
    pub flow_goodput_full_mbps: Vec<f64>,
    /// Per-flow completion time: when the flow's byte budget (or its
    /// short-flow transfer sequence's first budget) finished, `None`
    /// for saturating flows that run to the end of the scenario.
    pub flow_completion: Vec<Option<SimTime>>,
    /// Per-class metrics (FCT/latency/jitter sketches); empty only for
    /// zero-flow worlds.
    pub classes: Vec<ClassReport>,
    /// Per-station MAC statistics (index 0 = AP, then clients).
    pub mac: Vec<MacStats>,
    /// Per-client compress-side driver statistics.
    pub driver: Vec<CompressSideStats>,
    /// Per-client AP-side (AP → client direction) compress-side driver
    /// statistics — nonzero `hacked_acks` here means the *AP* held and
    /// compressed ACKs for a client-bound data stream (bidirectional
    /// traffic).
    pub driver_ap: Vec<CompressSideStats>,
    /// Per-client compressor statistics.
    pub compressor: Vec<CompressStats>,
    /// Decompressor statistics at the AP.
    pub decompressor: DecompressStats,
    /// Completed PPDUs on the medium.
    pub ppdus: u64,
    /// Total discrete events dispatched by the scheduler (the
    /// denominator of the hot-path events/sec benchmark).
    pub events_dispatched: u64,
    /// PPDUs corrupted by collisions.
    pub collisions: u64,
    /// Packets tail-dropped at the AP queue.
    pub ap_queue_drops: u64,
    /// TCP statistics of the data senders (per flow).
    pub sender_tcp: Vec<TcpStats>,
    /// TCP statistics of the data receivers (per flow).
    pub receiver_tcp: Vec<TcpStats>,
    /// Fraction of blob-carrying LL ACKs whose blob extension fits
    /// within AIFS (the paper's 98.5 % claim, §3.3.2 fn 7).
    pub blob_within_aifs: f64,
    /// Per-flow supervisor outcomes (empty when supervision is off).
    pub supervisor: Vec<SupervisorReport>,
    /// Per-flow goodput (Mbps) over the final window of the run — the
    /// stall detector: a live flow has nonzero goodput here even under
    /// faults, a stalled one does not.
    pub flow_goodput_final_mbps: Vec<f64>,
    /// Completed AP handoffs (re-associations, including give-up
    /// returns to the previous AP). Zero in roam-free runs.
    pub roams: u64,
}

impl RunResult {
    /// Table 1's row: fraction of data MPDUs needing no retries, over
    /// the AP's transmissions (the AP sends the data in downloads).
    pub fn ap_first_try_fraction(&self) -> Option<f64> {
        self.mac.first().and_then(MacStats::first_try_fraction)
    }

    /// Derived aggregate completion: the time at which every
    /// byte-budgeted flow completed — `Some(max)` when all flows
    /// completed, `None` otherwise (the old `completion` field).
    pub fn completion(&self) -> Option<SimTime> {
        self.flow_completion
            .iter()
            .copied()
            .try_fold(SimTime::ZERO, |acc, c| c.map(|t| acc.max(t)))
    }

    /// The [`ClassReport`] for `class`, if the run had such flows.
    pub fn class(&self, class: TrafficClass) -> Option<&ClassReport> {
        self.classes.iter().find(|c| c.class == class)
    }
}
