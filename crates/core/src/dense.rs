//! Sharded execution of dense multi-BSS worlds.
//!
//! A dense scenario declares dozens of BSSs; its interference graph
//! (derived from AP placement + channel assignment, see
//! [`InterferenceGraph::derive`](hack_phy::InterferenceGraph::derive))
//! usually splits into several connected components. Domains in
//! different components can never affect each other — no PPDU from one
//! reaches a listener in the other — so each component can run as its
//! own [`World`] ("shard") and the shards can run on parallel threads.
//!
//! ## Determinism
//!
//! Parallel output is byte-identical to serial, by construction:
//!
//! 1. **Shard independence.** Shards are connected components of the
//!    interference graph, so the cross-shard event set is provably
//!    empty; each shard's trajectory depends only on its own config and
//!    seed ([`shard_seed`], derived from the master seed and the
//!    shard's smallest BSS index — stable under any thread schedule).
//! 2. **Ordered reduction.** Every cross-shard observation — the
//!    epoch-boundary exchange ledger, merged flow goodputs, shard trace
//!    digests — is folded in shard index order *after* the epoch
//!    barrier (`std::thread::scope` join), never in completion order.
//!
//! The same argument backs `hack-campaign`'s parallel==serial proof;
//! [`run_dense`] reuses it one level down, inside a single scenario.
//!
//! ## Epoch boundaries
//!
//! Shards advance in lockstep epochs ([`DenseOptions::epoch`]): every
//! shard runs all events `<= t`, the scope join forms a barrier, and
//! the exchange ledger absorbs each shard's progress delta in shard
//! order. Components exchange no simulation events (their edge set is
//! empty), so the ledger payload is pure progress accounting — but its
//! digest pins that serial and parallel executions dispatched the
//! identical event schedule epoch by epoch, which is what the
//! `dense-smoke` CI job compares across thread counts.

use std::collections::HashMap;

use hack_phy::InterferenceGraph;
use hack_rohc::DecompressStats;
use hack_sim::{SimDuration, SimTime};
use hack_trace::TraceHandle;

use crate::scenario::{
    ChannelChange, ChannelEvent, ClassReport, ClientPath, LossConfig, RoamEvent, RunResult,
    ScenarioConfig,
};
use crate::sim::World;
use crate::stable::StableHasher;

/// How to drive a dense world.
#[derive(Debug, Clone)]
pub struct DenseOptions {
    /// Worker threads for shard execution. `1` runs shards serially on
    /// the calling thread; either way the output is byte-identical.
    pub threads: usize,
    /// Epoch length: shards synchronize (and the exchange ledger folds
    /// their progress) every this-much simulated time.
    pub epoch: SimDuration,
    /// Attach a trace ring to every shard and report per-shard digests
    /// (the cross-thread-count comparison the CI smoke job runs).
    pub digests: bool,
}

impl Default for DenseOptions {
    fn default() -> Self {
        DenseOptions {
            threads: 1,
            epoch: SimDuration::from_millis(100),
            digests: false,
        }
    }
}

/// One shard's outcome.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Global BSS indices (into `cfg.bss`) this shard simulated,
    /// ascending.
    pub bss: Vec<usize>,
    /// Global flow indices this shard simulated, in shard-local flow
    /// order (`result.flow_goodput_mbps[j]` is global flow `flows[j]`).
    pub flows: Vec<usize>,
    /// The shard's seed (see [`shard_seed`]).
    pub seed: u64,
    /// The shard world's full result.
    pub result: RunResult,
    /// Hex trace digest, when [`DenseOptions::digests`] was set.
    pub digest: Option<String>,
}

/// Outcome of a dense run: per-shard results plus the merged view.
#[derive(Debug, Clone)]
pub struct DenseReport {
    /// Per-shard outcomes, in shard index order (shards are ordered by
    /// their smallest BSS index).
    pub shards: Vec<ShardReport>,
    /// Epoch barriers crossed.
    pub epochs: u64,
    /// Hex digest of the epoch-boundary exchange ledger: an FNV-1a/128
    /// fold of `(epoch, shard, events-dispatched-delta)` in `(epoch,
    /// shard)` order. Identical across thread counts iff every shard
    /// dispatched the identical event schedule.
    pub exchange_digest: String,
    /// Sum of shard aggregate steady-state goodputs (Mbps).
    pub aggregate_goodput_mbps: f64,
    /// Steady-state per-flow goodput in *global* flow order.
    pub flow_goodput_mbps: Vec<f64>,
}

/// Deterministic seed for the shard whose smallest global BSS index is
/// `shard_min_bss`, derived from the scenario's master seed. Stable
/// across processes and thread schedules, and distinct per shard so
/// co-scheduled shards never share an RNG stream.
pub fn shard_seed(master: u64, shard_min_bss: usize) -> u64 {
    let mut h = StableHasher::new();
    h.write(b"hack-dense-shard");
    h.u64(master);
    h.usize(shard_min_bss);
    let d = h.finish();
    u64::from_le_bytes(d[..8].try_into().expect("16-byte digest"))
}

/// Split a dense scenario into its independent shard configurations.
///
/// Each returned pair is `(shard config, global flow indices)`: the
/// config describes one connected component of the interference graph
/// as a standalone scenario (BSS subset, flow-indexed vectors remapped
/// to shard-local order, dynamics filtered to the shard's clients, seed
/// from [`shard_seed`]), and the flow list maps shard-local flow `j`
/// back to global flow `flows[j]`.
///
/// Running each returned config as its own [`World`] reproduces, byte
/// for byte, what [`run_dense`] runs — that equivalence is the sharding
/// oracle the test suite pins. (Roam quantization assumes the default
/// epoch; [`run_dense`] itself uses its configured one.)
///
/// # Panics
/// Panics if `cfg.bss` is empty (legacy single-cell worlds have nothing
/// to shard; run them directly).
pub fn shard_configs(cfg: &ScenarioConfig) -> Vec<(ScenarioConfig, Vec<usize>)> {
    components(cfg, DenseOptions::default().epoch)
        .into_iter()
        .map(|comp| {
            let (sub, flows, _) = comp;
            (sub, flows)
        })
        .collect()
}

/// Connected components of `cfg`'s interference graph — closed under
/// roaming — each projected to `(shard config, global flows, global BSS
/// indices)`.
///
/// Roam closure: a scheduled handoff couples the flow's current cell to
/// its target, so the two cells' interference components are merged
/// into one shard and the roam runs live inside it. When the handoff
/// crosses what *were* two separate domains, its `at` is additionally
/// quantized **up** to the next `epoch` boundary — a pure config
/// transform applied before any shard exists, hence identical for every
/// thread count (parallel == serial stays trivially true). An SNR roam
/// trigger can send any client anywhere, so it collapses all components
/// into a single shard.
fn components(
    cfg: &ScenarioConfig,
    epoch: SimDuration,
) -> Vec<(ScenarioConfig, Vec<usize>, Vec<usize>)> {
    assert!(
        !cfg.bss.is_empty(),
        "sharding needs a dense (multi-BSS) scenario"
    );
    let placements: Vec<_> = cfg
        .bss
        .iter()
        .map(|b| hack_phy::BssPlacement {
            x: b.x,
            y: b.y,
            channel: b.channel,
        })
        .collect();
    let graph = InterferenceGraph::derive(&placements, &cfg.interference);
    // Global flows are numbered in cell order: cell c owns the block
    // [offsets[c], offsets[c] + n_clients_c).
    let mut offsets = Vec::with_capacity(cfg.bss.len());
    let mut acc = 0usize;
    let mut cell_of_flow = Vec::new();
    for (b, spec) in cfg.bss.iter().enumerate() {
        offsets.push(acc);
        acc += spec.n_clients;
        cell_of_flow.extend((0..spec.n_clients).map(|_| b));
    }
    let raw: Vec<Vec<usize>> = graph.components();
    let mut comp_of = vec![0usize; cfg.bss.len()];
    for (ci, comp) in raw.iter().enumerate() {
        for &b in comp {
            comp_of[b] = ci;
        }
    }

    // Roam closure over the raw components (union-find).
    let mut parent: Vec<usize> = (0..raw.len()).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != r {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    let mut cfg = cfg.clone();
    if cfg.roam.trigger.is_some() {
        for c in 1..raw.len() {
            let (a, b) = (find(&mut parent, 0), find(&mut parent, c));
            parent[b] = a;
        }
    }
    if !cfg.roam.schedule.is_empty() {
        // Walk each flow's roams in time order so chained handoffs
        // (A → B → C) track the cell the flow actually leaves from.
        let mut order: Vec<usize> = (0..cfg.roam.schedule.len()).collect();
        order.sort_by_key(|&i| {
            let e = &cfg.roam.schedule[i];
            (e.flow, e.at.as_nanos(), i)
        });
        let mut cur: HashMap<usize, usize> = HashMap::new();
        for &i in &order {
            let e = cfg.roam.schedule[i];
            if e.flow >= cell_of_flow.len() || e.target_bss >= cfg.bss.len() {
                continue;
            }
            let from = cur.get(&e.flow).copied().unwrap_or(cell_of_flow[e.flow]);
            if comp_of[from] != comp_of[e.target_bss] {
                // Cross-domain: land the handoff exactly on an epoch
                // boundary and merge the two shards.
                let en = epoch.as_nanos().max(1);
                cfg.roam.schedule[i].at =
                    SimDuration::from_nanos(e.at.as_nanos().div_ceil(en) * en);
                let (a, b) = (
                    find(&mut parent, comp_of[from]),
                    find(&mut parent, comp_of[e.target_bss]),
                );
                if a != b {
                    parent[b] = a;
                }
            }
            cur.insert(e.flow, e.target_bss);
        }
    }

    // Collapse raw components into their union-find groups, each sorted
    // by BSS index, groups ordered by their smallest BSS index.
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for (ci, comp) in raw.iter().enumerate() {
        let root = find(&mut parent, ci);
        groups.entry(root).or_default().extend(comp.iter().copied());
    }
    let mut merged: Vec<Vec<usize>> = groups.into_values().collect();
    for g in &mut merged {
        g.sort_unstable();
    }
    merged.sort_by_key(|g| g[0]);

    merged
        .into_iter()
        .map(|comp| {
            let (sub, flows) = project(&cfg, &comp, &offsets);
            (sub, flows, comp)
        })
        .collect()
}

/// Project one connected component of `cfg` into a standalone scenario.
fn project(
    cfg: &ScenarioConfig,
    comp: &[usize],
    offsets: &[usize],
) -> (ScenarioConfig, Vec<usize>) {
    let flows: Vec<usize> = comp
        .iter()
        .flat_map(|&b| offsets[b]..offsets[b] + cfg.bss[b].n_clients)
        .collect();
    let mut sub = cfg.clone();
    sub.bss = comp.iter().map(|&b| cfg.bss[b]).collect();
    sub.n_clients = flows.len();
    sub.seed = shard_seed(cfg.seed, comp[0]);
    if let LossConfig::PerClient(per) = &cfg.loss {
        sub.loss = LossConfig::PerClient(
            flows
                .iter()
                .map(|&f| per.get(f).copied().unwrap_or(0.0))
                .collect(),
        );
    }
    if !cfg.client_hack_capable.is_empty() {
        sub.client_hack_capable = flows
            .iter()
            .map(|&f| cfg.client_hack_capable.get(f).copied().unwrap_or(true))
            .collect();
    }
    // Per-flow traffic models follow their flow into the shard (the
    // scalar default in `sub.traffic` covers flows past the mix).
    if !cfg.traffic_mix.is_empty() {
        sub.traffic_mix = flows.iter().map(|&f| cfg.model_of(f)).collect();
    }
    // Dynamics: global events (SNR offset) reach every shard; per-client
    // events follow their client, with the index remapped to the
    // shard-local flow number. Events aimed at other shards' clients
    // are dropped here and kept by exactly one sibling shard.
    sub.dynamics = cfg
        .dynamics
        .iter()
        .filter_map(|ev| {
            let local = |client: usize| flows.iter().position(|&f| f == client);
            match ev.change {
                ChannelChange::SnrOffsetDb(_) => Some(ev.clone()),
                ChannelChange::ClientLoss { client, per } => local(client).map(|j| ChannelEvent {
                    at: ev.at,
                    change: ChannelChange::ClientLoss { client: j, per },
                }),
                ChannelChange::MoveClient { client, x, y } => local(client).map(|j| ChannelEvent {
                    at: ev.at,
                    change: ChannelChange::MoveClient { client: j, x, y },
                }),
            }
        })
        .collect();
    // Roaming follows the same rule: entries follow their flow with
    // flow and target indices remapped to shard-local numbering. The
    // roam closure in `components` guarantees an in-shard flow's
    // targets are in-shard too, so the remap never drops a live roam.
    let local_flow = |f: usize| flows.iter().position(|&x| x == f);
    let local_bss = |b: usize| comp.iter().position(|&x| x == b);
    sub.roam.schedule = cfg
        .roam
        .schedule
        .iter()
        .filter_map(|e| {
            Some(RoamEvent {
                flow: local_flow(e.flow)?,
                at: e.at,
                target_bss: local_bss(e.target_bss)?,
            })
        })
        .collect();
    sub.roam.paths = cfg
        .roam
        .paths
        .iter()
        .filter_map(|p| {
            Some(ClientPath {
                client: local_flow(p.client)?,
                waypoints: p.waypoints.clone(),
            })
        })
        .collect();
    if !cfg.roam.ap_hack_capable.is_empty() {
        sub.roam.ap_hack_capable = comp
            .iter()
            .map(|&b| cfg.roam.ap_hack_capable.get(b).copied().unwrap_or(true))
            .collect();
    }
    (sub, flows)
}

/// Run a dense multi-BSS scenario, sharded by interference-graph
/// component, on `opts.threads` worker threads.
///
/// Output is byte-identical for every thread count (see the module
/// docs' determinism argument); `opts.digests` + comparing
/// [`DenseReport::exchange_digest`] and each shard's digest across two
/// thread counts is the cheap way to check that in CI.
///
/// # Panics
/// Panics if `cfg.bss` is empty.
pub fn run_dense(cfg: &ScenarioConfig, opts: &DenseOptions) -> DenseReport {
    let epoch = if opts.epoch > SimDuration::ZERO {
        opts.epoch
    } else {
        SimDuration::from_millis(100)
    };
    let parts = components(cfg, epoch);
    let n_flows_total: usize = parts.iter().map(|(_, f, _)| f.len()).sum();

    // Assemble every shard world up front (serial: world construction
    // draws from the shard RNG and is cheap next to the run).
    let mut shards: Vec<Shard> = parts
        .into_iter()
        .map(|(sub, flows, bss)| {
            let seed = sub.seed;
            let (trace, ring) = if opts.digests {
                let (handle, ring) = TraceHandle::ring(1 << 12);
                (handle, Some(ring))
            } else {
                (TraceHandle::off(), None)
            };
            Shard {
                bss,
                flows,
                seed,
                world: Some(World::builder(sub).trace(trace).build()),
                ring,
                alive: true,
                events: 0,
            }
        })
        .collect();

    let threads = opts.threads.max(1);
    let mut ledger = StableHasher::new();
    ledger.write(b"hack-dense-exchange");
    ledger.usize(shards.len());
    let mut epochs = 0u64;
    let mut t = SimTime::ZERO;

    while shards.iter().any(|s| s.alive) {
        t += epoch;
        epochs += 1;
        if threads > 1 && shards.len() > 1 {
            let chunk = shards.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for slab in shards.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for s in slab {
                            s.step(t);
                        }
                    });
                }
            }); // join = epoch barrier: no shard enters epoch k+1 early
        } else {
            for s in &mut shards {
                s.step(t);
            }
        }
        // Exchange ledger, folded strictly in shard index order.
        for (i, s) in shards.iter_mut().enumerate() {
            let now = s.world.as_ref().map_or(s.events, World::events_dispatched);
            ledger.u64(epochs);
            ledger.usize(i);
            ledger.u64(now - s.events);
            s.events = now;
        }
    }

    let mut reports = Vec::with_capacity(shards.len());
    let mut flow_goodput = vec![0.0; n_flows_total];
    let mut aggregate = 0.0;
    for s in shards {
        let result = s.world.expect("world present until finish").finish();
        for (j, &f) in s.flows.iter().enumerate() {
            flow_goodput[f] = result.flow_goodput_mbps[j];
        }
        aggregate += result.aggregate_goodput_mbps;
        let digest = s.ring.map(|r| {
            r.digest()
                .to_bytes()
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect()
        });
        reports.push(ShardReport {
            bss: s.bss,
            flows: s.flows,
            seed: s.seed,
            result,
            digest,
        });
    }

    DenseReport {
        shards: reports,
        epochs,
        exchange_digest: ledger.finish_hex(),
        aggregate_goodput_mbps: aggregate,
        flow_goodput_mbps: flow_goodput,
    }
}

/// Run `cfg` through the right engine: legacy single-cell worlds run
/// directly; dense multi-BSS worlds run sharded (see [`run_dense`], on
/// every available core) and the shard results are folded back into one
/// [`RunResult`] by [`merge_dense`]. Output is deterministic either way
/// — sharded output is byte-identical for every thread count — which is
/// what lets the campaign runner sweep, cache, and resume dense cells
/// exactly like legacy ones.
pub fn run_auto(cfg: ScenarioConfig) -> RunResult {
    if cfg.bss.is_empty() {
        return crate::sim::run(cfg);
    }
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let opts = DenseOptions {
        threads,
        ..DenseOptions::default()
    };
    merge_dense(run_dense(&cfg, &opts))
}

/// Scatter one per-flow stats vector from shard-local back to global
/// flow order. All-empty stays empty (e.g. TCP vectors on UDP runs).
fn scatter<T: Clone>(n: usize, shards: &[ShardReport], get: impl Fn(&RunResult) -> &[T]) -> Vec<T> {
    if shards.iter().all(|s| get(&s.result).is_empty()) {
        return Vec::new();
    }
    let mut out: Vec<Option<T>> = vec![None; n];
    for s in shards {
        let v = get(&s.result);
        for (j, &f) in s.flows.iter().enumerate() {
            if let Some(x) = v.get(j) {
                out[f] = Some(x.clone());
            }
        }
    }
    out.into_iter()
        .map(|x| x.expect("every global flow is owned by exactly one shard"))
        .collect()
}

/// Fold a [`DenseReport`] into one [`RunResult`]: per-flow vectors in
/// global flow order, per-station MAC stats concatenated in shard
/// order, scalar counters summed, and the derived ratios recomputed
/// over the whole fleet.
pub fn merge_dense(report: DenseReport) -> RunResult {
    let n = report.flow_goodput_mbps.len();
    let shards = &report.shards;
    let mac: Vec<_> = shards
        .iter()
        .flat_map(|s| s.result.mac.iter().cloned())
        .collect();
    let within: u64 = mac.iter().map(|m| m.blob_within_aifs.get()).sum();
    let beyond: u64 = mac.iter().map(|m| m.blob_beyond_aifs.get()).sum();
    let blob_within_aifs = if within + beyond == 0 {
        1.0
    } else {
        within as f64 / (within + beyond) as f64
    };
    let mut decompressor = DecompressStats::default();
    for s in shards {
        decompressor.merge(&s.result.decompressor);
    }
    // Per-class reports: same class across shards merges (sketches are
    // order-independent); sorted by class code for determinism.
    let mut classes: Vec<ClassReport> = Vec::new();
    for s in shards {
        for c in &s.result.classes {
            match classes.iter_mut().find(|x| x.class == c.class) {
                Some(agg) => {
                    agg.flows += c.flows;
                    agg.transfers += c.transfers;
                    agg.goodput_mbps += c.goodput_mbps;
                    agg.fct.merge(&c.fct);
                    agg.latency.merge(&c.latency);
                    agg.jitter.merge(&c.jitter);
                }
                None => classes.push(c.clone()),
            }
        }
    }
    classes.sort_by_key(|c| c.class.code());
    RunResult {
        flow_goodput_mbps: report.flow_goodput_mbps.clone(),
        aggregate_goodput_mbps: report.aggregate_goodput_mbps,
        flow_goodput_full_mbps: scatter(n, shards, |r| &r.flow_goodput_full_mbps),
        flow_completion: scatter(n, shards, |r| &r.flow_completion),
        classes,
        mac,
        driver: scatter(n, shards, |r| &r.driver),
        driver_ap: scatter(n, shards, |r| &r.driver_ap),
        compressor: scatter(n, shards, |r| &r.compressor),
        decompressor,
        ppdus: shards.iter().map(|s| s.result.ppdus).sum(),
        events_dispatched: shards.iter().map(|s| s.result.events_dispatched).sum(),
        collisions: shards.iter().map(|s| s.result.collisions).sum(),
        ap_queue_drops: shards.iter().map(|s| s.result.ap_queue_drops).sum(),
        sender_tcp: scatter(n, shards, |r| &r.sender_tcp),
        receiver_tcp: scatter(n, shards, |r| &r.receiver_tcp),
        blob_within_aifs,
        supervisor: scatter(n, shards, |r| &r.supervisor),
        flow_goodput_final_mbps: scatter(n, shards, |r| &r.flow_goodput_final_mbps),
        roams: shards.iter().map(|s| s.result.roams).sum(),
    }
}

/// One shard's in-flight state during the epoch loop.
struct Shard {
    bss: Vec<usize>,
    flows: Vec<usize>,
    seed: u64,
    world: Option<World>,
    ring: Option<std::sync::Arc<hack_trace::RingSink>>,
    alive: bool,
    events: u64,
}

impl Shard {
    fn step(&mut self, until: SimTime) {
        if self.alive {
            let w = self.world.as_mut().expect("world present until finish");
            self.alive = w.run_until(until);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::HackMode;
    use crate::scenario::BssSpec;
    use crate::StandardKind;

    fn dense_cfg(bss: Vec<BssSpec>, seed: u64) -> ScenarioConfig {
        ScenarioConfig::builder()
            .standard(StandardKind::Dot11n)
            .rate_mbps(150)
            .hack(HackMode::MoreData)
            .bss(bss)
            .duration(SimDuration::from_millis(60))
            .stagger(SimDuration::from_millis(2))
            .warmup(SimDuration::from_millis(5))
            .seed(seed)
            .build()
    }

    #[test]
    fn shard_seed_is_stable_and_distinct() {
        assert_eq!(shard_seed(7, 0), shard_seed(7, 0));
        assert_ne!(shard_seed(7, 0), shard_seed(7, 1));
        assert_ne!(shard_seed(7, 0), shard_seed(8, 0));
    }

    #[test]
    fn enterprise_floor_shards_fully() {
        // The 3-colouring keeps co-channel APs ≥ ~35 m apart: every BSS
        // is its own component.
        let cfg = dense_cfg(BssSpec::enterprise_floor(9, 1), 1);
        let parts = shard_configs(&cfg);
        assert_eq!(parts.len(), 9);
        for (i, (sub, flows)) in parts.iter().enumerate() {
            assert_eq!(sub.bss.len(), 1);
            assert_eq!(sub.n_clients, 1);
            assert_eq!(flows, &vec![i]);
            assert_eq!(sub.seed, shard_seed(cfg.seed, i));
        }
    }

    #[test]
    fn apartment_block_shards_by_channel_parity() {
        // Corridor spacing 8 m, channels alternate 1/6: same-channel
        // neighbours sit 16 m < 30 m apart, so odd and even APs form two
        // chain components.
        let cfg = dense_cfg(BssSpec::apartment_block(6, 2), 1);
        let parts = shard_configs(&cfg);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].1, vec![0, 1, 4, 5, 8, 9]); // cells 0,2,4
        assert_eq!(parts[1].1, vec![2, 3, 6, 7, 10, 11]); // cells 1,3,5
    }

    #[test]
    fn projection_remaps_flow_indexed_vectors_and_dynamics() {
        let mut cfg = dense_cfg(BssSpec::enterprise_floor(4, 2), 3);
        cfg.loss = LossConfig::PerClient(vec![0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07]);
        cfg.client_hack_capable = vec![true, true, false, true, true, true, true, false];
        cfg.dynamics = vec![
            ChannelEvent {
                at: SimDuration::from_millis(10),
                change: ChannelChange::SnrOffsetDb(-3.0),
            },
            ChannelEvent {
                at: SimDuration::from_millis(20),
                change: ChannelChange::ClientLoss {
                    client: 5,
                    per: 0.5,
                },
            },
        ];
        let parts = shard_configs(&cfg);
        assert_eq!(parts.len(), 4);
        // Shard 2 owns global flows 4 and 5.
        let (sub, flows) = &parts[2];
        assert_eq!(flows, &vec![4, 5]);
        assert_eq!(sub.loss, LossConfig::PerClient(vec![0.04, 0.05]));
        assert_eq!(sub.client_hack_capable, vec![true, true]);
        // The global SNR event survives; the client-5 event lands here
        // remapped to local client 1 — and nowhere else.
        assert_eq!(sub.dynamics.len(), 2);
        assert_eq!(
            sub.dynamics[1].change,
            ChannelChange::ClientLoss {
                client: 1,
                per: 0.5
            }
        );
        for (i, (other, _)) in parts.iter().enumerate() {
            if i != 2 {
                assert_eq!(other.dynamics.len(), 1, "shard {i} kept a foreign event");
            }
        }
    }

    #[test]
    fn dense_run_merges_flows_in_global_order() {
        let cfg = dense_cfg(BssSpec::enterprise_floor(4, 1), 11);
        let report = run_dense(&cfg, &DenseOptions::default());
        assert_eq!(report.flow_goodput_mbps.len(), 4);
        assert_eq!(report.shards.len(), 4);
        for s in &report.shards {
            assert_eq!(s.flows.len(), 1);
            assert_eq!(
                report.flow_goodput_mbps[s.flows[0]],
                s.result.flow_goodput_mbps[0]
            );
        }
        let sum: f64 = report
            .shards
            .iter()
            .map(|s| s.result.aggregate_goodput_mbps)
            .sum();
        assert!((report.aggregate_goodput_mbps - sum).abs() < 1e-12);
        assert!(report.epochs > 0);
    }
}
