//! The TCP/HACK drivers — the paper's core contribution (§3).
//!
//! [`CompressSide`] is the "client driver" of §3.3.1: it decides, for
//! every outgoing TCP ACK, whether to hold it compressed for the next
//! link-layer acknowledgment or to send it natively; it owns the MORE
//! DATA latch, the NIC-descriptor-ready race, and the §3.4 retention /
//! flush / SYNC rules. [`DecompressSide`] is the "AP driver": it
//! extracts blobs from augmented LL ACKs, reconstitutes TCP ACKs, and
//! keeps contexts fresh from natively received ACKs.
//!
//! Both sides are sans-IO: methods return [`DriverAction`]s the event
//! loop materializes (enqueue a native packet, install/clear the NIC
//! blob after the DMA latency, arm the explicit-timer flush).
//!
//! The design is symmetric — an AP doing a wireless *upload* from a
//! client runs a `CompressSide` toward that client, and the client runs
//! a `DecompressSide`.

use hack_inline::BufPool;
use hack_mac::RxDataInfo;
use hack_rohc::{CompressStats, Compressor, DecompressStats, Decompressor, RohcSegment};
use hack_sim::{SimDuration, SimTime};
use hack_tcp::Ipv4Packet;
use hack_trace::TraceHandle;

use crate::packet::NetPacket;

/// Which HACK variant a station runs (§3.2 "To HACK or not to HACK?").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HackMode {
    /// Stock 802.11: every TCP ACK is a normal transmission.
    Disabled,
    /// Opportunistic: ACKs are enqueued natively *and* staged on the
    /// NIC; whichever path wins the race delivers them.
    Opportunistic,
    /// The MORE DATA design: hold ACKs compressed whenever the peer has
    /// signalled more data is coming; fall back to native otherwise.
    MoreData,
    /// The naive explicit-timer fallback (evaluated as an ablation): hold
    /// every ACK and flush natively after a fixed delay.
    ExplicitTimer(SimDuration),
}

/// What the driver asks the event loop to do.
#[derive(Debug, Clone)]
pub enum DriverAction {
    /// Enqueue this packet on the MAC queue toward the peer as a normal
    /// transmission.
    SendNative(Ipv4Packet),
    /// (Re)build the NIC blob from the driver's held segments after the
    /// DMA latency; `generation` guards against stale installs.
    InstallBlob {
        /// Blob bytes to install once DMA completes.
        bytes: Vec<u8>,
        /// Driver blob generation at scheduling time.
        generation: u64,
    },
    /// Clear the NIC blob slot immediately.
    ClearBlob,
    /// Arm the explicit-timer flush at the given time.
    SetFlushTimer(SimTime),
}

/// One TCP ACK held compressed on the NIC.
#[derive(Debug, Clone)]
struct HeldAck {
    /// Compressed segment bytes (inline — no per-ACK heap allocation).
    segment: RohcSegment,
    /// The original packet, for native re-enqueue on HACK failure.
    original: Ipv4Packet,
    /// Whether this segment has ridden at least one transmitted LL ACK.
    rode_ll_ack: bool,
}

/// Driver-level statistics (Table 2's ACK accounting).
#[derive(Debug, Default, Clone)]
pub struct CompressSideStats {
    /// TCP ACKs sent natively.
    pub native_acks: u64,
    /// Bytes of natively sent TCP ACKs.
    pub native_ack_bytes: u64,
    /// TCP ACKs delivered compressed on LL ACKs (counted when first
    /// attached, i.e. when they rode an LL ACK).
    pub hacked_acks: u64,
    /// Compressed bytes of those ACKs.
    pub hacked_ack_bytes: u64,
    /// Held ACKs re-enqueued natively after a HACK failure (the ready
    /// race or a flush with unsent segments).
    pub reenqueued: u64,
    /// Held-and-sent ACKs dropped on flush (cumulative ACKs cover them).
    pub dropped_on_flush: u64,
    /// Explicit-timer flushes fired.
    pub timer_flushes: u64,
}

/// The compress-side (client) HACK driver toward one peer.
#[derive(Debug)]
pub struct CompressSide {
    mode: HackMode,
    compressor: Compressor,
    /// The MORE DATA latch (§3.2): set while the peer has promised more
    /// data, meaning held ACKs will get a ride.
    latched: bool,
    held: Vec<HeldAck>,
    /// Bumped on every rebuild; stale InstallBlob events are ignored.
    generation: u64,
    /// Clear (and flush) after the response that is about to go out.
    clear_after_response: bool,
    /// Whether a flush timer is currently armed (ExplicitTimer mode).
    flush_armed: bool,
    /// Scratch-buffer pool for blob bytes: rebuilds draw from here and
    /// the event loop returns displaced NIC blobs via
    /// [`CompressSide::recycle_blob`].
    pool: BufPool,
    stats: CompressSideStats,
}

impl CompressSide {
    /// A driver in the given mode.
    pub fn new(mode: HackMode) -> Self {
        CompressSide {
            mode,
            compressor: Compressor::new(),
            latched: false,
            held: Vec::new(),
            generation: 0,
            clear_after_response: false,
            flush_armed: false,
            pool: BufPool::new(),
            stats: CompressSideStats::default(),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> HackMode {
        self.mode
    }

    /// Install the structured-event trace handle on the embedded
    /// compressor; `node` is the station this driver runs on.
    pub fn set_trace(&mut self, trace: TraceHandle, node: u32) {
        self.compressor.set_trace(trace, node);
    }

    /// Driver statistics.
    pub fn stats(&self) -> &CompressSideStats {
        &self.stats
    }

    /// Compressor statistics (compression ratio etc.).
    pub fn compressor_stats(&self) -> &CompressStats {
        self.compressor.stats()
    }

    /// Number of ACKs currently held on the NIC.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Current blob generation (used by the event loop to validate
    /// InstallBlob events).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the MORE DATA latch is set.
    pub fn latched(&self) -> bool {
        self.latched
    }

    fn rebuild_blob(&mut self) -> DriverAction {
        self.generation += 1;
        if self.held.is_empty() {
            DriverAction::ClearBlob
        } else {
            // Serialize straight from `held` into a pooled buffer — no
            // intermediate Vec<Vec<u8>> and, in steady state, no
            // allocation at all.
            let mut bytes = self.pool.take();
            bytes.reserve(1 + self.held.iter().map(|h| h.segment.len()).sum::<usize>());
            bytes.push(u8::try_from(self.held.len()).expect("≤255 held ACKs"));
            for h in &self.held {
                bytes.extend_from_slice(&h.segment);
            }
            DriverAction::InstallBlob {
                bytes,
                generation: self.generation,
            }
        }
    }

    /// Return a displaced NIC blob's byte buffer to the scratch pool.
    /// The event loop calls this when an InstallBlob replaces an older
    /// blob or a ClearBlob removes one.
    pub fn recycle_blob(&mut self, bytes: Vec<u8>) {
        self.pool.put(bytes);
    }

    /// Blob scratch-pool counters `(hits, misses)` — the bench harness's
    /// recycling-efficiency proxy.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.hits(), self.pool.misses())
    }

    fn send_native(&mut self, pkt: Ipv4Packet, out: &mut Vec<DriverAction>) {
        self.compressor.observe_native(&pkt);
        self.stats.native_acks += 1;
        self.stats.native_ack_bytes += u64::from(pkt.wire_len());
        out.push(DriverAction::SendNative(pkt));
    }

    /// The local TCP stack produced an ACK toward the peer. Decide its
    /// path.
    pub fn on_ack_out(&mut self, pkt: Ipv4Packet, now: SimTime) -> Vec<DriverAction> {
        self.compressor.set_trace_clock(now.as_nanos());
        let mut out = Vec::new();
        match self.mode {
            HackMode::Disabled => {
                self.stats.native_acks += 1;
                self.stats.native_ack_bytes += u64::from(pkt.wire_len());
                out.push(DriverAction::SendNative(pkt));
            }
            HackMode::MoreData => {
                if self.latched {
                    match self.compressor.compress(&pkt) {
                        Some(segment) => {
                            self.held.push(HeldAck {
                                segment,
                                original: pkt,
                                rode_ll_ack: false,
                            });
                            out.push(self.rebuild_blob());
                        }
                        None => self.send_native(pkt, &mut out),
                    }
                } else {
                    self.send_native(pkt, &mut out);
                }
            }
            HackMode::ExplicitTimer(delay) => match self.compressor.compress(&pkt) {
                Some(segment) => {
                    self.held.push(HeldAck {
                        segment,
                        original: pkt,
                        rode_ll_ack: false,
                    });
                    out.push(self.rebuild_blob());
                    if !self.flush_armed {
                        self.flush_armed = true;
                        out.push(DriverAction::SetFlushTimer(now + delay));
                    }
                }
                None => self.send_native(pkt, &mut out),
            },
            HackMode::Opportunistic => {
                // Dual path: stage compressed on the NIC *and* enqueue
                // natively; the race decides (§3.2).
                match self.compressor.compress(&pkt) {
                    Some(segment) => {
                        self.held.push(HeldAck {
                            segment,
                            original: pkt.clone(),
                            rode_ll_ack: false,
                        });
                        out.push(self.rebuild_blob());
                        // Native twin goes out without `observe_native`:
                        // the compressor already advanced past this ACK.
                        self.stats.native_acks += 1;
                        self.stats.native_ack_bytes += u64::from(pkt.wire_len());
                        out.push(DriverAction::SendNative(pkt));
                    }
                    None => self.send_native(pkt, &mut out),
                }
            }
        }
        out
    }

    /// A data PPDU arrived from the peer (the MAC's `DataReceived`
    /// indication). Updates the latch and applies the §3.4 confirmation
    /// rules.
    pub fn on_data_received(&mut self, info: &RxDataInfo, now: SimTime) -> Vec<DriverAction> {
        self.compressor.set_trace_clock(now.as_nanos());
        let mut out = Vec::new();
        if self.mode == HackMode::Disabled {
            return out;
        }

        // §3.4 confirmation: receipt of data (not SYNC-marked) confirms
        // that our previous LL ACK — and the blob on it — reached the
        // peer. In single-MPDU mode only a *new* sequence number
        // confirms (Figure 5(b)); a same-seq retransmission means our
        // ACK was lost and the blob must ride again.
        let confirms = !info.sync && (info.is_aggregate || info.advances_seq);
        if confirms && self.held.iter().any(|h| h.rode_ll_ack) {
            for h in &self.held {
                if h.rode_ll_ack {
                    // Advance the compressor floor: the peer holds this.
                    self.compressor.confirm(&h.original);
                }
            }
            self.held.retain(|h| !h.rode_ll_ack);
            out.push(self.rebuild_blob());
        }

        if self.mode == HackMode::MoreData {
            self.latched = info.more_data;
            if !info.more_data {
                // Fig 2 / Fig 7: the response to *this* batch is the last
                // ride; afterwards everything flushes.
                self.clear_after_response = true;
            }
        }
        out
    }

    /// The MAC transmitted a response to the peer; `attached` reports
    /// whether our blob rode on it (the NIC's interrupt status, §3.3.1).
    pub fn on_response_sent(&mut self, attached: bool, _now: SimTime) -> Vec<DriverAction> {
        let mut out = Vec::new();
        if self.mode == HackMode::Disabled {
            return out;
        }
        if attached {
            for h in &mut self.held {
                if !h.rode_ll_ack {
                    h.rode_ll_ack = true;
                    self.stats.hacked_acks += 1;
                    self.stats.hacked_ack_bytes += h.segment.len() as u64;
                }
            }
        }
        if self.clear_after_response {
            self.clear_after_response = false;
            out.extend(self.flush(FlushCause::NoMoreData));
        }
        out
    }

    /// Some of our natively transmitted ACKs were just acknowledged by
    /// the peer's link layer: advance the compressor floor (every mode),
    /// and in Opportunistic mode drop the corresponding held copies
    /// (identified by IP ident) so they don't ride future LL ACKs.
    pub fn on_natives_delivered(&mut self, pkts: &[NetPacket]) -> Vec<DriverAction> {
        if self.mode == HackMode::Disabled {
            return Vec::new();
        }
        for p in pkts {
            self.compressor.confirm(p.ip());
        }
        if self.mode != HackMode::Opportunistic || self.held.is_empty() {
            return Vec::new();
        }
        let before = self.held.len();
        self.held.retain(|h| {
            !pkts
                .iter()
                .any(|p| p.ip().ident == h.original.ident && p.ip().src == h.original.src)
        });
        if self.held.len() != before {
            vec![self.rebuild_blob()]
        } else {
            Vec::new()
        }
    }

    /// Opportunistic mode: our blob rode an LL ACK; the native twins of
    /// the ridden ACKs should be withdrawn from the MAC queue. Returns
    /// the idents to withdraw.
    pub fn ridden_idents(&self) -> Vec<u16> {
        self.held
            .iter()
            .filter(|h| h.rode_ll_ack)
            .map(|h| h.original.ident)
            .collect()
    }

    /// The explicit flush timer fired.
    pub fn on_flush_timer(&mut self, now: SimTime) -> Vec<DriverAction> {
        self.compressor.set_trace_clock(now.as_nanos());
        self.flush_armed = false;
        if self.held.is_empty() {
            return Vec::new();
        }
        self.stats.timer_flushes += 1;
        self.flush(FlushCause::Timer)
    }

    fn flush(&mut self, _cause: FlushCause) -> Vec<DriverAction> {
        let mut out = Vec::new();
        for h in std::mem::take(&mut self.held) {
            if h.rode_ll_ack {
                // Rode at least one LL ACK: if that ACK was lost, a later
                // cumulative TCP ACK covers it (Figure 7).
                self.stats.dropped_on_flush += 1;
            } else {
                // Never rode anything (the ready race, §3.3.1): the
                // driver "re-enqueues the TCP ACKs on the transmit queue
                // for normal transmission".
                self.stats.reenqueued += 1;
                self.compressor.observe_native(&h.original);
                self.stats.native_acks += 1;
                self.stats.native_ack_bytes += u64::from(h.original.wire_len());
                out.push(DriverAction::SendNative(h.original));
            }
        }
        self.generation += 1;
        out.push(DriverAction::ClearBlob);
        self.latched = false;
        out
    }
}

#[derive(Debug, Clone, Copy)]
enum FlushCause {
    NoMoreData,
    Timer,
}

/// The decompress-side (AP) HACK driver.
#[derive(Debug, Default)]
pub struct DecompressSide {
    decompressor: Decompressor,
    /// TCP ACKs reconstituted from blobs and forwarded upstream.
    pub forwarded: u64,
}

impl DecompressSide {
    /// A fresh decompress side.
    pub fn new() -> Self {
        DecompressSide::default()
    }

    /// Install the structured-event trace handle on the embedded
    /// decompressor; `node` is the station this driver runs on.
    pub fn set_trace(&mut self, trace: TraceHandle, node: u32) {
        self.decompressor.set_trace(trace, node);
    }

    /// Decompressor statistics.
    pub fn stats(&self) -> &DecompressStats {
        self.decompressor.stats()
    }

    /// A native TCP ACK arrived from the wireless side: refresh contexts.
    pub fn on_native_ack(&mut self, pkt: &Ipv4Packet, now: SimTime) {
        self.decompressor.set_trace_clock(now.as_nanos());
        self.decompressor.observe_native(pkt);
    }

    /// An augmented LL ACK carried this blob: reconstitute the TCP ACKs
    /// to forward upstream. Duplicates and CRC failures are absorbed
    /// (counted in stats).
    pub fn on_blob(&mut self, blob: &[u8], now: SimTime) -> Vec<Ipv4Packet> {
        self.decompressor.set_trace_clock(now.as_nanos());
        let res = self.decompressor.decompress_blob(blob);
        self.forwarded += res.packets.len() as u64;
        res.packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tcp::{flags as tf, Ipv4Addr, TcpOption, TcpSegment, TcpSeq, Transport};

    fn ack(ackno: u32, ident: u16) -> Ipv4Packet {
        Ipv4Packet {
            src: Ipv4Addr::new(192, 168, 0, 2),
            dst: Ipv4Addr::new(10, 0, 0, 1),
            ident,
            ttl: 64,
            transport: Transport::Tcp(TcpSegment {
                src_port: 40000,
                dst_port: 5001,
                seq: TcpSeq(1),
                ack: TcpSeq(ackno),
                flags: tf::ACK,
                window: 1024,
                options: vec![TcpOption::Timestamps { tsval: 5, tsecr: 2 }].into(),
                payload_len: 0,
            }),
        }
    }

    fn info(more_data: bool, sync: bool) -> RxDataInfo {
        RxDataInfo {
            from: hack_phy::StationId(0),
            mpdus_ok: 2,
            more_data,
            sync,
            advances_seq: true,
            is_aggregate: true,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn disabled_mode_is_always_native() {
        let mut d = CompressSide::new(HackMode::Disabled);
        let acts = d.on_ack_out(ack(1000, 1), t(1));
        assert!(matches!(acts[0], DriverAction::SendNative(_)));
        assert_eq!(d.stats().native_acks, 1);
        // Latch inputs are ignored.
        d.on_data_received(&info(true, false), t(1));
        let acts = d.on_ack_out(ack(2000, 2), t(2));
        assert!(matches!(acts[0], DriverAction::SendNative(_)));
    }

    #[test]
    fn more_data_unlatched_sends_native() {
        let mut d = CompressSide::new(HackMode::MoreData);
        let acts = d.on_ack_out(ack(1000, 1), t(1));
        assert!(matches!(acts[0], DriverAction::SendNative(_)));
        assert_eq!(d.held_count(), 0);
    }

    #[test]
    fn more_data_latched_holds_compressed() {
        let mut d = CompressSide::new(HackMode::MoreData);
        // Seed the context with a native ACK first.
        d.on_ack_out(ack(1000, 1), t(1));
        // Peer promises more data.
        d.on_data_received(&info(true, false), t(2));
        assert!(d.latched());
        let acts = d.on_ack_out(ack(2000, 2), t(2));
        assert!(
            matches!(acts[0], DriverAction::InstallBlob { .. }),
            "{acts:?}"
        );
        assert_eq!(d.held_count(), 1);
        // Another ACK extends the blob.
        let acts = d.on_ack_out(ack(3000, 3), t(2));
        assert!(matches!(acts[0], DriverAction::InstallBlob { .. }));
        assert_eq!(d.held_count(), 2);
    }

    #[test]
    fn uncompressible_ack_goes_native_even_when_latched() {
        let mut d = CompressSide::new(HackMode::MoreData);
        d.on_data_received(&info(true, false), t(1));
        // No context yet: the first ACK cannot compress.
        let acts = d.on_ack_out(ack(1000, 1), t(1));
        assert!(matches!(acts[0], DriverAction::SendNative(_)));
        // But it seeded the context, so the next one compresses.
        let acts = d.on_ack_out(ack(2000, 2), t(2));
        assert!(matches!(acts[0], DriverAction::InstallBlob { .. }));
    }

    #[test]
    fn response_ride_marks_and_confirmation_clears() {
        let mut d = CompressSide::new(HackMode::MoreData);
        d.on_ack_out(ack(1000, 1), t(1));
        d.on_data_received(&info(true, false), t(2));
        d.on_ack_out(ack(2000, 2), t(2));
        // Blob rides a Block ACK.
        d.on_response_sent(true, t(3));
        assert_eq!(d.stats().hacked_acks, 1);
        assert_eq!(d.held_count(), 1, "retained until confirmed");
        // Next data arrival (no SYNC) confirms: held cleared.
        let acts = d.on_data_received(&info(true, false), t(4));
        assert_eq!(d.held_count(), 0);
        assert!(matches!(acts[0], DriverAction::ClearBlob));
    }

    #[test]
    fn sync_bit_preserves_held_state() {
        let mut d = CompressSide::new(HackMode::MoreData);
        d.on_ack_out(ack(1000, 1), t(1));
        d.on_data_received(&info(true, false), t(2));
        d.on_ack_out(ack(2000, 2), t(2));
        d.on_response_sent(true, t(3));
        // SYNC-marked batch: the peer never got our Block ACK (Fig 8).
        let acts = d.on_data_received(&info(true, true), t(4));
        assert_eq!(d.held_count(), 1, "SYNC forbids discarding");
        assert!(acts.is_empty());
        // The blob rides again on the next response.
        d.on_response_sent(true, t(5));
        // A clean batch finally confirms.
        d.on_data_received(&info(true, false), t(6));
        assert_eq!(d.held_count(), 0);
    }

    #[test]
    fn no_more_data_flushes_after_response() {
        let mut d = CompressSide::new(HackMode::MoreData);
        d.on_ack_out(ack(1000, 1), t(1));
        d.on_data_received(&info(true, false), t(2));
        d.on_ack_out(ack(2000, 2), t(2));
        // Final batch: MORE DATA off.
        d.on_data_received(&info(false, false), t(3));
        assert!(!d.latched());
        // The response still carries the blob (Fig 2's last ride)…
        let acts = d.on_response_sent(true, t(3));
        // …and afterwards held state clears; the ridden ACK is dropped
        // (cumulative ACKs cover it), nothing re-enqueues.
        assert_eq!(d.held_count(), 0);
        assert!(acts.iter().any(|a| matches!(a, DriverAction::ClearBlob)));
        assert!(!acts
            .iter()
            .any(|a| matches!(a, DriverAction::SendNative(_))));
        assert_eq!(d.stats().dropped_on_flush, 1);
        // Subsequent ACKs go native again.
        let acts = d.on_ack_out(ack(3000, 3), t(4));
        assert!(matches!(acts[0], DriverAction::SendNative(_)));
    }

    #[test]
    fn ready_race_reenqueues_unsent_acks() {
        let mut d = CompressSide::new(HackMode::MoreData);
        d.on_ack_out(ack(1000, 1), t(1));
        d.on_data_received(&info(true, false), t(2));
        d.on_ack_out(ack(2000, 2), t(2));
        // Data arrives without MORE DATA and the response goes out
        // *before* the blob was DMA'd: attached = false.
        d.on_data_received(&info(false, false), t(3));
        let acts = d.on_response_sent(false, t(3));
        // The held ACK never rode: it must be re-enqueued natively.
        let natives: Vec<_> = acts
            .iter()
            .filter(|a| matches!(a, DriverAction::SendNative(_)))
            .collect();
        assert_eq!(natives.len(), 1);
        assert_eq!(d.stats().reenqueued, 1);
        assert_eq!(d.held_count(), 0);
    }

    #[test]
    fn explicit_timer_flushes_natively() {
        let mut d = CompressSide::new(HackMode::ExplicitTimer(SimDuration::from_millis(10)));
        d.on_ack_out(ack(1000, 1), t(1)); // native (seeds context)
        let acts = d.on_ack_out(ack(2000, 2), t(2));
        assert!(matches!(acts[0], DriverAction::InstallBlob { .. }));
        assert!(acts
            .iter()
            .any(|a| matches!(a, DriverAction::SetFlushTimer(at) if *at == t(12))));
        // Timer fires with the ACK never having ridden: re-enqueue.
        let acts = d.on_flush_timer(t(12));
        assert!(acts
            .iter()
            .any(|a| matches!(a, DriverAction::SendNative(_))));
        assert_eq!(d.stats().timer_flushes, 1);
        assert_eq!(d.held_count(), 0);
    }

    #[test]
    fn opportunistic_dual_path_and_withdrawal() {
        let mut d = CompressSide::new(HackMode::Opportunistic);
        d.on_ack_out(ack(1000, 1), t(1)); // native only (no context yet)
        let acts = d.on_ack_out(ack(2000, 2), t(2));
        // Both a blob install and a native enqueue.
        assert!(acts
            .iter()
            .any(|a| matches!(a, DriverAction::InstallBlob { .. })));
        assert!(acts
            .iter()
            .any(|a| matches!(a, DriverAction::SendNative(_))));
        assert_eq!(d.held_count(), 1);
        // Blob rides an LL ACK: the native twin's ident is reported for
        // withdrawal from the MAC queue.
        d.on_response_sent(true, t(3));
        assert_eq!(d.ridden_idents(), vec![2]);
        // Natives delivered first instead: held copy dropped.
        let mut d2 = CompressSide::new(HackMode::Opportunistic);
        d2.on_ack_out(ack(1000, 1), t(1));
        d2.on_ack_out(ack(2000, 2), t(2));
        let acts = d2.on_natives_delivered(&[NetPacket(ack(2000, 2))]);
        assert_eq!(d2.held_count(), 0);
        assert!(matches!(acts[0], DriverAction::ClearBlob));
    }

    #[test]
    fn roundtrip_through_decompress_side() {
        let mut c = CompressSide::new(HackMode::MoreData);
        let mut ap = DecompressSide::new();
        // Native ACK seeds both ends.
        let first = ack(1000, 1);
        c.on_ack_out(first.clone(), t(1));
        ap.on_native_ack(&first, t(1));
        // Latch, hold, ride.
        c.on_data_received(&info(true, false), t(2));
        let acts = c.on_ack_out(ack(2000, 2), t(2));
        let DriverAction::InstallBlob { bytes, .. } = &acts[0] else {
            panic!("expected blob install, got {acts:?}");
        };
        let pkts = ap.on_blob(bytes, t(3));
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0], ack(2000, 2), "byte-exact reconstitution");
        assert_eq!(ap.forwarded, 1);
    }

    #[test]
    fn decompress_side_absorbs_duplicate_blobs() {
        let mut c = CompressSide::new(HackMode::MoreData);
        let mut ap = DecompressSide::new();
        let first = ack(1000, 1);
        c.on_ack_out(first.clone(), t(1));
        ap.on_native_ack(&first, t(1));
        c.on_data_received(&info(true, false), t(2));
        let acts = c.on_ack_out(ack(2000, 2), t(2));
        let DriverAction::InstallBlob { bytes, .. } = &acts[0] else {
            panic!()
        };
        assert_eq!(ap.on_blob(bytes, t(3)).len(), 1);
        // Retained blob arrives again (our BA was retransmitted).
        assert_eq!(ap.on_blob(bytes, t(4)).len(), 0);
        assert_eq!(ap.stats().duplicates, 1);
    }
}
