//! The TCP/HACK drivers — the paper's core contribution (§3).
//!
//! [`CompressSide`] is the "client driver" of §3.3.1: it decides, for
//! every outgoing TCP ACK, whether to hold it compressed for the next
//! link-layer acknowledgment or to send it natively; it owns the MORE
//! DATA latch, the NIC-descriptor-ready race, and the §3.4 retention /
//! flush / SYNC rules. [`DecompressSide`] is the "AP driver": it
//! extracts blobs from augmented LL ACKs, reconstitutes TCP ACKs, and
//! keeps contexts fresh from natively received ACKs.
//!
//! Both sides are sans-IO: methods return [`DriverAction`]s the event
//! loop materializes (enqueue a native packet, install/clear the NIC
//! blob after the DMA latency, arm the explicit-timer flush).
//!
//! The design is symmetric — an AP doing a wireless *upload* from a
//! client runs a `CompressSide` toward that client, and the client runs
//! a `DecompressSide`.

use hack_inline::BufPool;
use hack_mac::RxDataInfo;
use hack_rohc::{CompressStats, Compressor, DecompressStats, Decompressor, RohcSegment};
use hack_sim::{SimDuration, SimTime};
use hack_tcp::{FiveTuple, Ipv4Packet};
use hack_trace::TraceHandle;

use crate::packet::NetPacket;

/// Which HACK variant a station runs (§3.2 "To HACK or not to HACK?").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HackMode {
    /// Stock 802.11: every TCP ACK is a normal transmission.
    Disabled,
    /// Opportunistic: ACKs are enqueued natively *and* staged on the
    /// NIC; whichever path wins the race delivers them.
    Opportunistic,
    /// The MORE DATA design: hold ACKs compressed whenever the peer has
    /// signalled more data is coming; fall back to native otherwise.
    MoreData,
    /// The naive explicit-timer fallback (evaluated as an ablation): hold
    /// every ACK and flush natively after a fixed delay.
    ExplicitTimer(SimDuration),
}

/// What the driver asks the event loop to do.
#[derive(Debug, Clone)]
pub enum DriverAction {
    /// Enqueue this packet on the MAC queue toward the peer as a normal
    /// transmission.
    SendNative(Ipv4Packet),
    /// (Re)build the NIC blob from the driver's held segments after the
    /// DMA latency; `generation` guards against stale installs.
    InstallBlob {
        /// Blob bytes to install once DMA completes.
        bytes: Vec<u8>,
        /// Driver blob generation at scheduling time.
        generation: u64,
    },
    /// Clear the NIC blob slot immediately.
    ClearBlob,
    /// Arm the explicit-timer flush at the given time.
    SetFlushTimer(SimTime),
    /// Disarm a pending explicit-timer flush: the held queue drained via
    /// §3.4 confirmation, so the timer would only fire as a no-op.
    CancelFlushTimer,
}

/// One TCP ACK held compressed on the NIC.
#[derive(Debug, Clone)]
struct HeldAck {
    /// Compressed segment bytes (inline — no per-ACK heap allocation).
    segment: RohcSegment,
    /// The original packet, for native re-enqueue on HACK failure.
    original: Ipv4Packet,
    /// Whether this segment has ridden at least one transmitted LL ACK.
    rode_ll_ack: bool,
    /// When this ACK was staged (staleness accounting).
    held_at: SimTime,
}

/// Driver-level statistics (Table 2's ACK accounting).
#[derive(Debug, Default, Clone)]
pub struct CompressSideStats {
    /// TCP ACKs sent natively.
    pub native_acks: u64,
    /// Bytes of natively sent TCP ACKs.
    pub native_ack_bytes: u64,
    /// TCP ACKs delivered compressed on LL ACKs (counted when first
    /// attached, i.e. when they rode an LL ACK).
    pub hacked_acks: u64,
    /// Compressed bytes of those ACKs.
    pub hacked_ack_bytes: u64,
    /// Held ACKs re-enqueued natively after a HACK failure (the ready
    /// race or a flush with unsent segments).
    pub reenqueued: u64,
    /// Held-and-sent ACKs dropped on flush (cumulative ACKs cover them).
    pub dropped_on_flush: u64,
    /// Explicit-timer flushes fired.
    pub timer_flushes: u64,
    /// Oldest held ACKs spilled to the native path by the held-queue
    /// cap.
    pub spilled: u64,
    /// Explicit-timer flushes that fired with nothing held (should stay
    /// zero now that confirmation cancels the timer; counted so a
    /// regression is visible).
    pub noop_flushes: u64,
    /// Times the supervisor forced this driver onto the native path.
    pub forced_native: u64,
}

/// Health observations the event loop drains from the driver and feeds
/// to the flow's supervisor (compress-side contribution).
#[derive(Debug, Default, Clone, Copy)]
pub struct DriverHealth {
    /// Held ACKs spilled by the queue cap since the last drain.
    pub spills: u64,
    /// Staleness-limit violations of the oldest held ACK since the last
    /// drain.
    pub stale_holds: u64,
}

impl DriverHealth {
    /// True if nothing was observed since the last drain.
    pub fn is_empty(&self) -> bool {
        self.spills == 0 && self.stale_holds == 0
    }
}

/// The compress-side (client) HACK driver toward one peer.
#[derive(Debug)]
pub struct CompressSide {
    mode: HackMode,
    compressor: Compressor,
    /// The MORE DATA latch (§3.2): set while the peer has promised more
    /// data, meaning held ACKs will get a ride.
    latched: bool,
    held: Vec<HeldAck>,
    /// Incrementally maintained blob payload: the concatenation of every
    /// held segment's bytes, kept in sync with `held` by appending on
    /// hold and splicing on spill/confirm/flush. A rebuild is then a
    /// single memcpy instead of re-encoding all held ACKs.
    blob_cache: Vec<u8>,
    /// Bumped on every rebuild; stale InstallBlob events are ignored.
    generation: u64,
    /// Clear (and flush) after the response that is about to go out.
    clear_after_response: bool,
    /// Whether a flush timer is currently armed (ExplicitTimer mode).
    flush_armed: bool,
    /// Cap on the held queue; pushing past it spills the oldest ACK to
    /// the native path.
    held_cap: usize,
    /// Supervisor override: route everything native without changing
    /// `mode` (the runtime equivalent of [`HackMode::Disabled`]).
    forced_native: bool,
    /// Staleness limit for the oldest held ACK (None = unchecked).
    stale_limit: Option<SimDuration>,
    /// Pending health observations for the supervisor.
    health: DriverHealth,
    /// Scratch-buffer pool for blob bytes: rebuilds draw from here and
    /// the event loop returns displaced NIC blobs via
    /// [`CompressSide::recycle_blob`].
    pool: BufPool,
    stats: CompressSideStats,
}

/// Default [`CompressSide`] held-queue cap. Generous: §3.4 retention in
/// a healthy exchange holds at most a batch or two (tens of ACKs), and
/// the blob format itself tops out at 255 segments.
pub const DEFAULT_HELD_CAP: usize = 64;

impl CompressSide {
    /// A driver in the given mode.
    pub fn new(mode: HackMode) -> Self {
        CompressSide {
            mode,
            compressor: Compressor::new(),
            latched: false,
            held: Vec::new(),
            blob_cache: Vec::new(),
            generation: 0,
            clear_after_response: false,
            flush_armed: false,
            held_cap: DEFAULT_HELD_CAP,
            forced_native: false,
            stale_limit: None,
            health: DriverHealth::default(),
            pool: BufPool::new(),
            stats: CompressSideStats::default(),
        }
    }

    /// Set the held-queue cap (clamped to the blob format's 255-segment
    /// ceiling; a zero cap is treated as 1).
    pub fn set_held_cap(&mut self, cap: usize) {
        self.held_cap = cap.clamp(1, 255);
    }

    /// Set (or clear) the staleness limit on the oldest held ACK.
    pub fn set_stale_limit(&mut self, limit: Option<SimDuration>) {
        self.stale_limit = limit;
    }

    /// Drain pending health observations (spills, stale holds) for the
    /// supervisor.
    pub fn drain_health(&mut self) -> DriverHealth {
        std::mem::take(&mut self.health)
    }

    /// Whether the supervisor currently forces the native path.
    pub fn is_forced_native(&self) -> bool {
        self.forced_native
    }

    /// Supervisor override: route all subsequent ACKs natively without
    /// changing the configured mode. Held state flushes exactly like a
    /// MORE-DATA-off flush — unridden ACKs re-enqueue natively, ridden
    /// ones are covered by later cumulative ACKs — and any pending
    /// explicit flush timer is cancelled.
    pub fn force_native(&mut self, _now: SimTime) -> Vec<DriverAction> {
        if self.forced_native || self.mode == HackMode::Disabled {
            return Vec::new();
        }
        self.forced_native = true;
        self.stats.forced_native += 1;
        self.clear_after_response = false;
        let mut out = Vec::new();
        if self.flush_armed {
            self.flush_armed = false;
            out.push(DriverAction::CancelFlushTimer);
        }
        out.extend(self.flush(FlushCause::Forced));
        out
    }

    /// Supervisor override lifted (probation re-entry): resume the
    /// configured HACK mode. The latch re-arms on the next MORE DATA
    /// indication.
    pub fn resume_hack(&mut self) {
        self.forced_native = false;
    }

    /// Supervisor-driven ROHC refresh: drop the flow's compressor
    /// context so the next ACK declines, goes native, and re-seeds.
    pub fn drop_context(&mut self, tuple: &FiveTuple) -> bool {
        self.compressor.drop_context(tuple)
    }

    /// The configured mode.
    pub fn mode(&self) -> HackMode {
        self.mode
    }

    /// Install the structured-event trace handle on the embedded
    /// compressor; `node` is the station this driver runs on.
    pub fn set_trace(&mut self, trace: TraceHandle, node: u32) {
        self.compressor.set_trace(trace, node);
    }

    /// Driver statistics.
    pub fn stats(&self) -> &CompressSideStats {
        &self.stats
    }

    /// Compressor statistics (compression ratio etc.).
    pub fn compressor_stats(&self) -> &CompressStats {
        self.compressor.stats()
    }

    /// Number of ACKs currently held on the NIC.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Current blob generation (used by the event loop to validate
    /// InstallBlob events).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the MORE DATA latch is set.
    pub fn latched(&self) -> bool {
        self.latched
    }

    fn rebuild_blob(&mut self) -> DriverAction {
        self.generation += 1;
        if self.held.is_empty() {
            DriverAction::ClearBlob
        } else {
            debug_assert_eq!(
                self.blob_cache.as_slice(),
                &self.rebuild_blob_from_scratch()[1..],
                "incremental blob diverged from a from-scratch encode"
            );
            // The payload is maintained incrementally (append on hold,
            // splice on spill/confirm): a rebuild is one memcpy out of
            // the cache into a pooled buffer.
            let mut bytes = self.pool.take();
            bytes.reserve(1 + self.blob_cache.len());
            bytes.push(u8::try_from(self.held.len()).expect("≤255 held ACKs"));
            bytes.extend_from_slice(&self.blob_cache);
            DriverAction::InstallBlob {
                bytes,
                generation: self.generation,
            }
        }
    }

    /// The blob a from-scratch rebuild would produce (count byte + every
    /// held segment re-serialized). Verification hook for the
    /// incremental `blob_cache` — `rebuild_blob` debug-asserts against
    /// it, and the equivalence proptests compare it to the cached bytes
    /// after arbitrary driver-op sequences.
    pub fn rebuild_blob_from_scratch(&self) -> Vec<u8> {
        let mut bytes =
            Vec::with_capacity(1 + self.held.iter().map(|h| h.segment.len()).sum::<usize>());
        bytes.push(u8::try_from(self.held.len()).expect("≤255 held ACKs"));
        for h in &self.held {
            bytes.extend_from_slice(&h.segment);
        }
        bytes
    }

    /// The incrementally maintained blob (count byte + cached payload),
    /// as `rebuild_blob` would install it. Verification hook for the
    /// equivalence proptests.
    pub fn current_blob(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(1 + self.blob_cache.len());
        bytes.push(u8::try_from(self.held.len()).expect("≤255 held ACKs"));
        bytes.extend_from_slice(&self.blob_cache);
        bytes
    }

    /// Return a displaced NIC blob's byte buffer to the scratch pool.
    /// The event loop calls this when an InstallBlob replaces an older
    /// blob or a ClearBlob removes one.
    pub fn recycle_blob(&mut self, bytes: Vec<u8>) {
        self.pool.put(bytes);
    }

    /// Blob scratch-pool counters `(hits, misses)` — the bench harness's
    /// recycling-efficiency proxy.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.hits(), self.pool.misses())
    }

    fn send_native(&mut self, pkt: Ipv4Packet, out: &mut Vec<DriverAction>) {
        self.compressor.observe_native(&pkt);
        self.stats.native_acks += 1;
        self.stats.native_ack_bytes += u64::from(pkt.wire_len());
        out.push(DriverAction::SendNative(pkt));
    }

    /// Stage a compressed ACK, spilling the oldest entry first when the
    /// queue sits at its cap. An unridden spill re-enqueues natively
    /// (except in Opportunistic mode, whose native twin is already in
    /// the MAC queue); a ridden one is covered by later cumulative ACKs.
    fn hold(
        &mut self,
        segment: RohcSegment,
        original: Ipv4Packet,
        now: SimTime,
        out: &mut Vec<DriverAction>,
    ) {
        while self.held.len() >= self.held_cap {
            let oldest = self.held.remove(0);
            self.blob_cache.drain(..oldest.segment.len());
            self.stats.spilled += 1;
            self.health.spills += 1;
            if oldest.rode_ll_ack || self.mode == HackMode::Opportunistic {
                self.stats.dropped_on_flush += 1;
            } else {
                self.stats.reenqueued += 1;
                self.compressor.observe_native(&oldest.original);
                self.stats.native_acks += 1;
                self.stats.native_ack_bytes += u64::from(oldest.original.wire_len());
                out.push(DriverAction::SendNative(oldest.original));
            }
        }
        self.blob_cache.extend_from_slice(&segment);
        self.held.push(HeldAck {
            segment,
            original,
            rode_ll_ack: false,
            held_at: now,
        });
    }

    /// Staleness watchdog: if the oldest held ACK has been staged longer
    /// than the limit, record one health observation and re-arm.
    fn check_stale(&mut self, now: SimTime) {
        if let (Some(limit), Some(oldest)) = (self.stale_limit, self.held.first()) {
            if now.saturating_duration_since(oldest.held_at) > limit {
                self.health.stale_holds += 1;
                for h in &mut self.held {
                    h.held_at = now;
                }
            }
        }
    }

    /// The local TCP stack produced an ACK toward the peer. Decide its
    /// path.
    pub fn on_ack_out(&mut self, pkt: Ipv4Packet, now: SimTime) -> Vec<DriverAction> {
        self.compressor.set_trace_clock(now.as_nanos());
        let mut out = Vec::new();
        if self.forced_native {
            self.send_native(pkt, &mut out);
            return out;
        }
        self.check_stale(now);
        match self.mode {
            HackMode::Disabled => {
                self.stats.native_acks += 1;
                self.stats.native_ack_bytes += u64::from(pkt.wire_len());
                out.push(DriverAction::SendNative(pkt));
            }
            HackMode::MoreData => {
                if self.latched {
                    match self.compressor.compress(&pkt) {
                        Some(segment) => {
                            self.hold(segment, pkt, now, &mut out);
                            out.push(self.rebuild_blob());
                        }
                        None => self.send_native(pkt, &mut out),
                    }
                } else {
                    self.send_native(pkt, &mut out);
                }
            }
            HackMode::ExplicitTimer(delay) => match self.compressor.compress(&pkt) {
                Some(segment) => {
                    self.hold(segment, pkt, now, &mut out);
                    out.push(self.rebuild_blob());
                    if !self.flush_armed {
                        self.flush_armed = true;
                        out.push(DriverAction::SetFlushTimer(now + delay));
                    }
                }
                None => self.send_native(pkt, &mut out),
            },
            HackMode::Opportunistic => {
                // Dual path: stage compressed on the NIC *and* enqueue
                // natively; the race decides (§3.2).
                match self.compressor.compress(&pkt) {
                    Some(segment) => {
                        self.hold(segment, pkt.clone(), now, &mut out);
                        out.push(self.rebuild_blob());
                        // Native twin goes out without `observe_native`:
                        // the compressor already advanced past this ACK.
                        self.stats.native_acks += 1;
                        self.stats.native_ack_bytes += u64::from(pkt.wire_len());
                        out.push(DriverAction::SendNative(pkt));
                    }
                    None => self.send_native(pkt, &mut out),
                }
            }
        }
        out
    }

    /// A data PPDU arrived from the peer (the MAC's `DataReceived`
    /// indication). Updates the latch and applies the §3.4 confirmation
    /// rules.
    pub fn on_data_received(&mut self, info: &RxDataInfo, now: SimTime) -> Vec<DriverAction> {
        self.compressor.set_trace_clock(now.as_nanos());
        let mut out = Vec::new();
        if self.mode == HackMode::Disabled || self.forced_native {
            return out;
        }
        self.check_stale(now);

        // §3.4 confirmation: receipt of data (not SYNC-marked) confirms
        // that our previous LL ACK — and the blob on it — reached the
        // peer. In single-MPDU mode only a *new* sequence number
        // confirms (Figure 5(b)); a same-seq retransmission means our
        // ACK was lost and the blob must ride again.
        let confirms = !info.sync && (info.is_aggregate || info.advances_seq);
        if confirms && self.held.iter().any(|h| h.rode_ll_ack) {
            // Ridden entries always form a prefix of `held`:
            // `on_response_sent` marks everything currently held, and new
            // holds append unridden at the tail. The confirmed prefix
            // splices off the front of the cached blob payload in one
            // drain.
            let ridden = self.held.iter().take_while(|h| h.rode_ll_ack).count();
            debug_assert!(
                self.held[ridden..].iter().all(|h| !h.rode_ll_ack),
                "ridden held ACKs must form a prefix"
            );
            let ridden_bytes: usize = self.held[..ridden].iter().map(|h| h.segment.len()).sum();
            for h in self.held.drain(..ridden) {
                // Advance the compressor floor: the peer holds this.
                self.compressor.confirm(&h.original);
            }
            self.blob_cache.drain(..ridden_bytes);
            out.push(self.rebuild_blob());
            // The confirmation may have drained the queue entirely; a
            // still-armed explicit flush timer would only fire as a
            // no-op, so disarm it (satellite: the stale-flush-timer
            // fix).
            if self.flush_armed && self.held.is_empty() {
                self.flush_armed = false;
                out.push(DriverAction::CancelFlushTimer);
            }
        }

        if self.mode == HackMode::MoreData {
            self.latched = info.more_data;
            if !info.more_data {
                // Fig 2 / Fig 7: the response to *this* batch is the last
                // ride; afterwards everything flushes.
                self.clear_after_response = true;
            }
        }
        out
    }

    /// The MAC transmitted a response to the peer; `attached` reports
    /// whether our blob rode on it (the NIC's interrupt status, §3.3.1).
    pub fn on_response_sent(&mut self, attached: bool, _now: SimTime) -> Vec<DriverAction> {
        let mut out = Vec::new();
        if self.mode == HackMode::Disabled || self.forced_native {
            return out;
        }
        if attached {
            for h in &mut self.held {
                if !h.rode_ll_ack {
                    h.rode_ll_ack = true;
                    self.stats.hacked_acks += 1;
                    self.stats.hacked_ack_bytes += h.segment.len() as u64;
                }
            }
        }
        if self.clear_after_response {
            self.clear_after_response = false;
            out.extend(self.flush(FlushCause::NoMoreData));
        }
        out
    }

    /// Some of our natively transmitted ACKs were just acknowledged by
    /// the peer's link layer: advance the compressor floor (every mode),
    /// and in Opportunistic mode drop the corresponding held copies
    /// (identified by IP ident) so they don't ride future LL ACKs.
    ///
    /// Non-ACK packets in `pkts` (data MSDUs sharing the same A-MPDU)
    /// are ignored, so callers can pass the delivered batch as-is
    /// without filtering into a fresh allocation first.
    pub fn on_natives_delivered(&mut self, pkts: &[NetPacket]) -> Vec<DriverAction> {
        if self.mode == HackMode::Disabled {
            return Vec::new();
        }
        for p in pkts.iter().filter(|p| p.is_pure_tcp_ack()) {
            self.compressor.confirm(p.ip());
        }
        if self.mode != HackMode::Opportunistic || self.held.is_empty() {
            return Vec::new();
        }
        let before = self.held.len();
        let mut offset = 0usize;
        let mut i = 0;
        while i < self.held.len() {
            let seg_len = self.held[i].segment.len();
            let delivered = pkts.iter().filter(|p| p.is_pure_tcp_ack()).any(|p| {
                p.ip().ident == self.held[i].original.ident
                    && p.ip().src == self.held[i].original.src
            });
            if delivered {
                self.held.remove(i);
                self.blob_cache.drain(offset..offset + seg_len);
            } else {
                offset += seg_len;
                i += 1;
            }
        }
        if self.held.len() != before {
            vec![self.rebuild_blob()]
        } else {
            Vec::new()
        }
    }

    /// Opportunistic mode: our blob rode an LL ACK; the native twins of
    /// the ridden ACKs should be withdrawn from the MAC queue. Returns
    /// the idents to withdraw.
    pub fn ridden_idents(&self) -> Vec<u16> {
        self.held
            .iter()
            .filter(|h| h.rode_ll_ack)
            .map(|h| h.original.ident)
            .collect()
    }

    /// The explicit flush timer fired.
    pub fn on_flush_timer(&mut self, now: SimTime) -> Vec<DriverAction> {
        self.compressor.set_trace_clock(now.as_nanos());
        self.flush_armed = false;
        if self.held.is_empty() {
            // Should no longer happen — confirmation drains emit
            // `CancelFlushTimer` — but count it so a regression to the
            // old silent-no-op behavior is visible.
            self.stats.noop_flushes += 1;
            return Vec::new();
        }
        self.stats.timer_flushes += 1;
        self.flush(FlushCause::Timer)
    }

    fn flush(&mut self, _cause: FlushCause) -> Vec<DriverAction> {
        let mut out = Vec::new();
        self.blob_cache.clear();
        for h in std::mem::take(&mut self.held) {
            if h.rode_ll_ack {
                // Rode at least one LL ACK: if that ACK was lost, a later
                // cumulative TCP ACK covers it (Figure 7).
                self.stats.dropped_on_flush += 1;
            } else {
                // Never rode anything (the ready race, §3.3.1): the
                // driver "re-enqueues the TCP ACKs on the transmit queue
                // for normal transmission".
                self.stats.reenqueued += 1;
                self.compressor.observe_native(&h.original);
                self.stats.native_acks += 1;
                self.stats.native_ack_bytes += u64::from(h.original.wire_len());
                out.push(DriverAction::SendNative(h.original));
            }
        }
        self.generation += 1;
        out.push(DriverAction::ClearBlob);
        self.latched = false;
        out
    }
}

#[derive(Debug, Clone, Copy)]
enum FlushCause {
    NoMoreData,
    Timer,
    Forced,
}

/// The decompress-side (AP) HACK driver.
#[derive(Debug, Default)]
pub struct DecompressSide {
    decompressor: Decompressor,
    /// TCP ACKs reconstituted from blobs and forwarded upstream.
    pub forwarded: u64,
}

impl DecompressSide {
    /// A fresh decompress side.
    pub fn new() -> Self {
        DecompressSide::default()
    }

    /// Install the structured-event trace handle on the embedded
    /// decompressor; `node` is the station this driver runs on.
    pub fn set_trace(&mut self, trace: TraceHandle, node: u32) {
        self.decompressor.set_trace(trace, node);
    }

    /// Decompressor statistics.
    pub fn stats(&self) -> &DecompressStats {
        self.decompressor.stats()
    }

    /// Supervisor-driven ROHC refresh: drop the flow's decompressor
    /// context; the next native ACK from the flow re-seeds it.
    pub fn drop_context(&mut self, tuple: &FiveTuple) -> bool {
        self.decompressor.drop_context(tuple)
    }

    /// A native TCP ACK arrived from the wireless side: refresh contexts.
    pub fn on_native_ack(&mut self, pkt: &Ipv4Packet, now: SimTime) {
        self.decompressor.set_trace_clock(now.as_nanos());
        self.decompressor.observe_native(pkt);
    }

    /// An augmented LL ACK carried this blob: reconstitute the TCP ACKs
    /// to forward upstream. Duplicates and CRC failures are absorbed
    /// (counted in stats).
    pub fn on_blob(&mut self, blob: &[u8], now: SimTime) -> Vec<Ipv4Packet> {
        let mut pkts = Vec::new();
        self.on_blob_with(blob, now, |p| pkts.push(p));
        pkts
    }

    /// Zero-copy variant of [`DecompressSide::on_blob`]: each
    /// reconstituted ACK is handed to `forward` as it decodes straight
    /// out of the borrowed blob slice — no intermediate packet `Vec`.
    /// The event loop uses this to schedule host-RX events directly.
    pub fn on_blob_with(&mut self, blob: &[u8], now: SimTime, mut forward: impl FnMut(Ipv4Packet)) {
        self.decompressor.set_trace_clock(now.as_nanos());
        for item in self.decompressor.decode(blob) {
            if let hack_rohc::BlobItem::Packet(p) = item {
                self.forwarded += 1;
                forward(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tcp::{flags as tf, Ipv4Addr, TcpOption, TcpSegment, TcpSeq, Transport};

    fn ack(ackno: u32, ident: u16) -> Ipv4Packet {
        Ipv4Packet {
            src: Ipv4Addr::new(192, 168, 0, 2),
            dst: Ipv4Addr::new(10, 0, 0, 1),
            ident,
            ttl: 64,
            transport: Transport::Tcp(TcpSegment {
                src_port: 40000,
                dst_port: 5001,
                seq: TcpSeq(1),
                ack: TcpSeq(ackno),
                flags: tf::ACK,
                window: 1024,
                options: vec![TcpOption::Timestamps { tsval: 5, tsecr: 2 }].into(),
                payload_len: 0,
            }),
        }
    }

    fn info(more_data: bool, sync: bool) -> RxDataInfo {
        RxDataInfo {
            from: hack_phy::StationId(0),
            mpdus_ok: 2,
            more_data,
            sync,
            advances_seq: true,
            is_aggregate: true,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn disabled_mode_is_always_native() {
        let mut d = CompressSide::new(HackMode::Disabled);
        let acts = d.on_ack_out(ack(1000, 1), t(1));
        assert!(matches!(acts[0], DriverAction::SendNative(_)));
        assert_eq!(d.stats().native_acks, 1);
        // Latch inputs are ignored.
        d.on_data_received(&info(true, false), t(1));
        let acts = d.on_ack_out(ack(2000, 2), t(2));
        assert!(matches!(acts[0], DriverAction::SendNative(_)));
    }

    #[test]
    fn more_data_unlatched_sends_native() {
        let mut d = CompressSide::new(HackMode::MoreData);
        let acts = d.on_ack_out(ack(1000, 1), t(1));
        assert!(matches!(acts[0], DriverAction::SendNative(_)));
        assert_eq!(d.held_count(), 0);
    }

    #[test]
    fn more_data_latched_holds_compressed() {
        let mut d = CompressSide::new(HackMode::MoreData);
        // Seed the context with a native ACK first.
        d.on_ack_out(ack(1000, 1), t(1));
        // Peer promises more data.
        d.on_data_received(&info(true, false), t(2));
        assert!(d.latched());
        let acts = d.on_ack_out(ack(2000, 2), t(2));
        assert!(
            matches!(acts[0], DriverAction::InstallBlob { .. }),
            "{acts:?}"
        );
        assert_eq!(d.held_count(), 1);
        // Another ACK extends the blob.
        let acts = d.on_ack_out(ack(3000, 3), t(2));
        assert!(matches!(acts[0], DriverAction::InstallBlob { .. }));
        assert_eq!(d.held_count(), 2);
    }

    #[test]
    fn uncompressible_ack_goes_native_even_when_latched() {
        let mut d = CompressSide::new(HackMode::MoreData);
        d.on_data_received(&info(true, false), t(1));
        // No context yet: the first ACK cannot compress.
        let acts = d.on_ack_out(ack(1000, 1), t(1));
        assert!(matches!(acts[0], DriverAction::SendNative(_)));
        // But it seeded the context, so the next one compresses.
        let acts = d.on_ack_out(ack(2000, 2), t(2));
        assert!(matches!(acts[0], DriverAction::InstallBlob { .. }));
    }

    #[test]
    fn response_ride_marks_and_confirmation_clears() {
        let mut d = CompressSide::new(HackMode::MoreData);
        d.on_ack_out(ack(1000, 1), t(1));
        d.on_data_received(&info(true, false), t(2));
        d.on_ack_out(ack(2000, 2), t(2));
        // Blob rides a Block ACK.
        d.on_response_sent(true, t(3));
        assert_eq!(d.stats().hacked_acks, 1);
        assert_eq!(d.held_count(), 1, "retained until confirmed");
        // Next data arrival (no SYNC) confirms: held cleared.
        let acts = d.on_data_received(&info(true, false), t(4));
        assert_eq!(d.held_count(), 0);
        assert!(matches!(acts[0], DriverAction::ClearBlob));
    }

    #[test]
    fn sync_bit_preserves_held_state() {
        let mut d = CompressSide::new(HackMode::MoreData);
        d.on_ack_out(ack(1000, 1), t(1));
        d.on_data_received(&info(true, false), t(2));
        d.on_ack_out(ack(2000, 2), t(2));
        d.on_response_sent(true, t(3));
        // SYNC-marked batch: the peer never got our Block ACK (Fig 8).
        let acts = d.on_data_received(&info(true, true), t(4));
        assert_eq!(d.held_count(), 1, "SYNC forbids discarding");
        assert!(acts.is_empty());
        // The blob rides again on the next response.
        d.on_response_sent(true, t(5));
        // A clean batch finally confirms.
        d.on_data_received(&info(true, false), t(6));
        assert_eq!(d.held_count(), 0);
    }

    #[test]
    fn no_more_data_flushes_after_response() {
        let mut d = CompressSide::new(HackMode::MoreData);
        d.on_ack_out(ack(1000, 1), t(1));
        d.on_data_received(&info(true, false), t(2));
        d.on_ack_out(ack(2000, 2), t(2));
        // Final batch: MORE DATA off.
        d.on_data_received(&info(false, false), t(3));
        assert!(!d.latched());
        // The response still carries the blob (Fig 2's last ride)…
        let acts = d.on_response_sent(true, t(3));
        // …and afterwards held state clears; the ridden ACK is dropped
        // (cumulative ACKs cover it), nothing re-enqueues.
        assert_eq!(d.held_count(), 0);
        assert!(acts.iter().any(|a| matches!(a, DriverAction::ClearBlob)));
        assert!(!acts
            .iter()
            .any(|a| matches!(a, DriverAction::SendNative(_))));
        assert_eq!(d.stats().dropped_on_flush, 1);
        // Subsequent ACKs go native again.
        let acts = d.on_ack_out(ack(3000, 3), t(4));
        assert!(matches!(acts[0], DriverAction::SendNative(_)));
    }

    #[test]
    fn ready_race_reenqueues_unsent_acks() {
        let mut d = CompressSide::new(HackMode::MoreData);
        d.on_ack_out(ack(1000, 1), t(1));
        d.on_data_received(&info(true, false), t(2));
        d.on_ack_out(ack(2000, 2), t(2));
        // Data arrives without MORE DATA and the response goes out
        // *before* the blob was DMA'd: attached = false.
        d.on_data_received(&info(false, false), t(3));
        let acts = d.on_response_sent(false, t(3));
        // The held ACK never rode: it must be re-enqueued natively.
        let natives: Vec<_> = acts
            .iter()
            .filter(|a| matches!(a, DriverAction::SendNative(_)))
            .collect();
        assert_eq!(natives.len(), 1);
        assert_eq!(d.stats().reenqueued, 1);
        assert_eq!(d.held_count(), 0);
    }

    #[test]
    fn explicit_timer_flushes_natively() {
        let mut d = CompressSide::new(HackMode::ExplicitTimer(SimDuration::from_millis(10)));
        d.on_ack_out(ack(1000, 1), t(1)); // native (seeds context)
        let acts = d.on_ack_out(ack(2000, 2), t(2));
        assert!(matches!(acts[0], DriverAction::InstallBlob { .. }));
        assert!(acts
            .iter()
            .any(|a| matches!(a, DriverAction::SetFlushTimer(at) if *at == t(12))));
        // Timer fires with the ACK never having ridden: re-enqueue.
        let acts = d.on_flush_timer(t(12));
        assert!(acts
            .iter()
            .any(|a| matches!(a, DriverAction::SendNative(_))));
        assert_eq!(d.stats().timer_flushes, 1);
        assert_eq!(d.held_count(), 0);
    }

    #[test]
    fn opportunistic_dual_path_and_withdrawal() {
        let mut d = CompressSide::new(HackMode::Opportunistic);
        d.on_ack_out(ack(1000, 1), t(1)); // native only (no context yet)
        let acts = d.on_ack_out(ack(2000, 2), t(2));
        // Both a blob install and a native enqueue.
        assert!(acts
            .iter()
            .any(|a| matches!(a, DriverAction::InstallBlob { .. })));
        assert!(acts
            .iter()
            .any(|a| matches!(a, DriverAction::SendNative(_))));
        assert_eq!(d.held_count(), 1);
        // Blob rides an LL ACK: the native twin's ident is reported for
        // withdrawal from the MAC queue.
        d.on_response_sent(true, t(3));
        assert_eq!(d.ridden_idents(), vec![2]);
        // Natives delivered first instead: held copy dropped.
        let mut d2 = CompressSide::new(HackMode::Opportunistic);
        d2.on_ack_out(ack(1000, 1), t(1));
        d2.on_ack_out(ack(2000, 2), t(2));
        let acts = d2.on_natives_delivered(&[NetPacket(ack(2000, 2))]);
        assert_eq!(d2.held_count(), 0);
        assert!(matches!(acts[0], DriverAction::ClearBlob));
    }

    #[test]
    fn held_cap_spills_oldest_to_native() {
        let mut d = CompressSide::new(HackMode::MoreData);
        d.set_held_cap(3);
        d.on_ack_out(ack(1000, 1), t(1)); // seeds the context natively
        d.on_data_received(&info(true, false), t(1));
        for i in 0..3u16 {
            d.on_ack_out(ack(2000 + u32::from(i) * 1000, 2 + i), t(2));
        }
        assert_eq!(d.held_count(), 3);
        // The 4th held ACK spills the oldest (ackno 2000, never rode) to
        // the native path.
        let acts = d.on_ack_out(ack(5000, 5), t(3));
        assert_eq!(d.held_count(), 3);
        let natives: Vec<_> = acts
            .iter()
            .filter_map(|a| match a {
                DriverAction::SendNative(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(natives.len(), 1);
        assert_eq!(natives[0].ident, 2, "oldest-first spill");
        assert_eq!(d.stats().spilled, 1);
        assert_eq!(d.stats().reenqueued, 1);
        let health = d.drain_health();
        assert_eq!(health.spills, 1);
        assert!(d.drain_health().is_empty(), "drain resets");
        // A ridden oldest is dropped instead (cumulative ACKs cover it).
        d.on_response_sent(true, t(4));
        let acts = d.on_ack_out(ack(6000, 6), t(5));
        assert!(!acts
            .iter()
            .any(|a| matches!(a, DriverAction::SendNative(_))));
        assert_eq!(d.stats().spilled, 2);
        assert_eq!(d.stats().dropped_on_flush, 1);
    }

    #[test]
    fn held_queue_is_bounded_under_dead_peer() {
        // Regression: before the cap, a peer that died mid-burst grew
        // `held` without bound (and past 255 the blob build panicked).
        let mut d = CompressSide::new(HackMode::MoreData);
        d.on_ack_out(ack(1000, 1), t(1));
        d.on_data_received(&info(true, false), t(1));
        for i in 0..1000u32 {
            d.on_ack_out(ack(2000 + i * 10, (i % 60000) as u16 + 2), t(2));
        }
        assert!(d.held_count() <= DEFAULT_HELD_CAP);
        assert_eq!(d.stats().spilled as usize, 1000 - DEFAULT_HELD_CAP);
    }

    #[test]
    fn confirmation_drain_cancels_flush_timer() {
        // Satellite: previously the timer stayed armed after a §3.4
        // confirmation drained `held` and fired as a silent no-op.
        let mut d = CompressSide::new(HackMode::ExplicitTimer(SimDuration::from_millis(10)));
        d.on_ack_out(ack(1000, 1), t(1)); // native (seeds context)
        let acts = d.on_ack_out(ack(2000, 2), t(2));
        assert!(acts
            .iter()
            .any(|a| matches!(a, DriverAction::SetFlushTimer(_))));
        // The blob rides, then data confirms: held drains fully.
        d.on_response_sent(true, t(3));
        let acts = d.on_data_received(&info(true, false), t(4));
        assert_eq!(d.held_count(), 0);
        assert!(
            acts.iter()
                .any(|a| matches!(a, DriverAction::CancelFlushTimer)),
            "drained queue must disarm the pending flush: {acts:?}"
        );
        // If the timer fired anyway it would be a counted no-op.
        assert_eq!(d.stats().noop_flushes, 0);
        d.on_flush_timer(t(12));
        assert_eq!(d.stats().noop_flushes, 1);
        assert_eq!(d.stats().timer_flushes, 0);
    }

    #[test]
    fn partial_drain_keeps_flush_timer() {
        let mut d = CompressSide::new(HackMode::ExplicitTimer(SimDuration::from_millis(10)));
        d.on_ack_out(ack(1000, 1), t(1));
        d.on_ack_out(ack(2000, 2), t(2));
        d.on_response_sent(true, t(3)); // rides
        d.on_ack_out(ack(3000, 3), t(4)); // new, unridden
        let acts = d.on_data_received(&info(true, false), t(5));
        assert_eq!(d.held_count(), 1, "only the ridden ACK drains");
        assert!(!acts
            .iter()
            .any(|a| matches!(a, DriverAction::CancelFlushTimer)));
        // The timer still fires for the survivor.
        let acts = d.on_flush_timer(t(12));
        assert!(acts
            .iter()
            .any(|a| matches!(a, DriverAction::SendNative(_))));
        assert_eq!(d.stats().timer_flushes, 1);
    }

    #[test]
    fn forced_native_flushes_and_bypasses_hack() {
        let mut d = CompressSide::new(HackMode::MoreData);
        d.on_ack_out(ack(1000, 1), t(1));
        d.on_data_received(&info(true, false), t(2));
        d.on_ack_out(ack(2000, 2), t(2));
        assert_eq!(d.held_count(), 1);
        let acts = d.force_native(t(3));
        assert!(d.is_forced_native());
        assert_eq!(d.held_count(), 0);
        // The unridden held ACK re-enqueues natively and the NIC slot
        // clears.
        assert!(acts
            .iter()
            .any(|a| matches!(a, DriverAction::SendNative(_))));
        assert!(acts.iter().any(|a| matches!(a, DriverAction::ClearBlob)));
        assert_eq!(d.stats().forced_native, 1);
        // While forced, everything is native regardless of the latch.
        d.on_data_received(&info(true, false), t(4));
        assert!(!d.latched(), "latch input ignored while forced");
        let acts = d.on_ack_out(ack(3000, 3), t(4));
        assert!(matches!(acts[0], DriverAction::SendNative(_)));
        // Idempotent.
        assert!(d.force_native(t(5)).is_empty());
        // Resume: the next MORE DATA indication re-latches and holds
        // again.
        d.resume_hack();
        d.on_data_received(&info(true, false), t(6));
        let acts = d.on_ack_out(ack(4000, 4), t(6));
        assert!(matches!(acts[0], DriverAction::InstallBlob { .. }));
    }

    #[test]
    fn forced_native_cancels_pending_flush_timer() {
        let mut d = CompressSide::new(HackMode::ExplicitTimer(SimDuration::from_millis(10)));
        d.on_ack_out(ack(1000, 1), t(1));
        d.on_ack_out(ack(2000, 2), t(2));
        let acts = d.force_native(t(3));
        assert!(acts
            .iter()
            .any(|a| matches!(a, DriverAction::CancelFlushTimer)));
        assert!(acts
            .iter()
            .any(|a| matches!(a, DriverAction::SendNative(_))));
    }

    #[test]
    fn stale_hold_reports_health() {
        let mut d = CompressSide::new(HackMode::MoreData);
        d.set_stale_limit(Some(SimDuration::from_millis(5)));
        d.on_ack_out(ack(1000, 1), t(1));
        d.on_data_received(&info(true, false), t(1));
        d.on_ack_out(ack(2000, 2), t(1));
        assert!(d.drain_health().is_empty());
        // 10 ms later the held ACK is stale; the watchdog reports once
        // and re-arms.
        d.on_ack_out(ack(3000, 3), t(11));
        assert_eq!(d.drain_health().stale_holds, 1);
        d.on_ack_out(ack(4000, 4), t(12));
        assert!(d.drain_health().is_empty(), "re-armed, not spamming");
    }

    #[test]
    fn roundtrip_through_decompress_side() {
        let mut c = CompressSide::new(HackMode::MoreData);
        let mut ap = DecompressSide::new();
        // Native ACK seeds both ends.
        let first = ack(1000, 1);
        c.on_ack_out(first.clone(), t(1));
        ap.on_native_ack(&first, t(1));
        // Latch, hold, ride.
        c.on_data_received(&info(true, false), t(2));
        let acts = c.on_ack_out(ack(2000, 2), t(2));
        let DriverAction::InstallBlob { bytes, .. } = &acts[0] else {
            panic!("expected blob install, got {acts:?}");
        };
        let pkts = ap.on_blob(bytes, t(3));
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0], ack(2000, 2), "byte-exact reconstitution");
        assert_eq!(ap.forwarded, 1);
    }

    #[test]
    fn decompress_side_absorbs_duplicate_blobs() {
        let mut c = CompressSide::new(HackMode::MoreData);
        let mut ap = DecompressSide::new();
        let first = ack(1000, 1);
        c.on_ack_out(first.clone(), t(1));
        ap.on_native_ack(&first, t(1));
        c.on_data_received(&info(true, false), t(2));
        let acts = c.on_ack_out(ack(2000, 2), t(2));
        let DriverAction::InstallBlob { bytes, .. } = &acts[0] else {
            panic!()
        };
        assert_eq!(ap.on_blob(bytes, t(3)).len(), 1);
        // Retained blob arrives again (our BA was retransmitted).
        assert_eq!(ap.on_blob(bytes, t(4)).len(), 0);
        assert_eq!(ap.stats().duplicates, 1);
    }
}
