//! # hack-core — TCP/HACK: Hierarchical ACKnowledgments
//!
//! The paper's primary contribution, assembled over the substrate
//! crates: TCP ACKs ride inside 802.11 link-layer acknowledgments,
//! eliminating the medium acquisitions (and collisions) that TCP's
//! reverse path otherwise costs.
//!
//! * [`driver`] — the HACK client and AP drivers: the MORE DATA latch,
//!   compress-and-hold, the NIC ready race, §3.4's retention / flush /
//!   SYNC rules, plus the Opportunistic and explicit-timer variants.
//! * [`packet`] — the IPv4 packet as an 802.11 MSDU.
//! * [`wired`] — the 500 Mbps / 1 ms backhaul between server and AP.
//! * [`sim`] — the whole-network event loop (stations + medium + wired +
//!   TCP endpoints + drivers).
//! * [`supervisor`] — per-flow health monitoring: graceful fallback to
//!   native ACKs under sustained faults, probation-gated re-enable.
//! * [`scenario`] — experiment-facing configuration and results.
//!
//! ```no_run
//! use hack_core::{run, HackMode, ScenarioBuilder};
//!
//! let stock = run(ScenarioBuilder::dot11n_download(150, 1, HackMode::Disabled).build());
//! let hack = run(ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build());
//! println!(
//!     "TCP/802.11n: {:.1} Mbps, TCP/HACK: {:.1} Mbps",
//!     stock.aggregate_goodput_mbps, hack.aggregate_goodput_mbps
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod dense;
pub mod driver;
pub mod packet;
pub mod scenario;
pub mod sim;
pub mod stable;
pub mod supervisor;
pub mod traffic;
pub mod wired;

pub use codec::{decode_run_result, encode_run_result, CodecError, RESULT_SCHEMA_VERSION};
pub use dense::{
    merge_dense, run_auto, run_dense, shard_configs, shard_seed, DenseOptions, DenseReport,
    ShardReport,
};
pub use driver::{
    CompressSide, CompressSideStats, DecompressSide, DriverAction, DriverHealth, HackMode,
    DEFAULT_HELD_CAP,
};
pub use hack_mac::AssocConfig;
pub use hack_phy::{BssPlacement, CorruptModel, GeParams, InterferenceConfig, InterferenceGraph};
pub use hack_phy::{RoamTrigger, Waypoint};
pub use hack_tcp::CcKind;
pub use packet::NetPacket;
pub use scenario::{
    BssSpec, ChannelChange, ChannelEvent, ClassReport, ClientPath, LossConfig, RoamConfig,
    RoamEvent, RunResult, ScenarioBuilder, ScenarioConfig, Standard, StandardKind, TrafficKind,
};
pub use sim::{run, run_traced, World, WorldBuilder};
pub use traffic::{
    ArrivalDist, CbrConfig, OnOffConfig, ShortFlowConfig, SizeDist, TrafficClass, TrafficModel,
};
pub use stable::{StableHasher, CONFIG_ENCODING_VERSION};
pub use supervisor::{
    FlowHealth, FlowSupervisor, HealthSignal, SupervisorAction, SupervisorConfig, SupervisorReport,
    SupervisorStats,
};
pub use wired::WiredLink;
