//! Versioned binary serialization of [`RunResult`] — the campaign
//! cache's on-disk format.
//!
//! The campaign engine caches each job's full [`RunResult`] keyed by
//! the content hash of its resolved configuration
//! ([`ScenarioConfig::stable_hash`](crate::ScenarioConfig::stable_hash)).
//! For a cache hit to be indistinguishable from a fresh run, the codec
//! must round-trip every field *exactly*: floats are stored as IEEE-754
//! bit patterns, never re-parsed from text, so decoded results produce
//! byte-identical aggregates and JSON.
//!
//! Every encoded result starts with a magic tag and
//! [`RESULT_SCHEMA_VERSION`]. Decoding a result with a different
//! version fails with [`CodecError::SchemaMismatch`], which the cache
//! treats as a miss — stale results from before a result-shape change
//! are silently recomputed instead of silently mixed in. **Bump the
//! version whenever [`RunResult`] or any struct reachable from it
//! changes shape or meaning.**

use hack_mac::MacStats;
use hack_rohc::{CompressStats, DecompressStats};
use hack_sim::{Counter, QuantileSketch, SimDuration, SimTime, TimeAccumulator};
use hack_tcp::TcpStats;

use crate::driver::CompressSideStats;
use crate::scenario::{ClassReport, RunResult};
use crate::supervisor::{FlowHealth, SupervisorReport, SupervisorStats};
use crate::traffic::TrafficClass;

/// Version of the serialized [`RunResult`] layout. Bump on any change
/// to the result shape; the cache rejects (and recomputes) entries
/// written under a different version.
///
/// v4: `completion` became per-flow `flow_completion`, plus the
/// AP-side driver stats (`driver_ap`) and per-class traffic reports
/// (`classes`, with sparse quantile sketches).
pub const RESULT_SCHEMA_VERSION: u32 = 4;

/// File magic for encoded results.
const MAGIC: &[u8; 4] = b"HKRR";

/// Why a byte string failed to decode as a [`RunResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The leading magic bytes are wrong — not a result file at all.
    BadMagic,
    /// The result was written under a different schema version.
    SchemaMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The byte string ended mid-field.
    Truncated,
    /// A field held a value outside its domain (e.g. an unknown
    /// [`FlowHealth`] code).
    BadValue,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a serialized RunResult (bad magic)"),
            CodecError::SchemaMismatch { found, expected } => write!(
                f,
                "RunResult schema version {found} != supported {expected}"
            ),
            CodecError::Truncated => write!(f, "serialized RunResult is truncated"),
            CodecError::BadValue => write!(f, "serialized RunResult holds an invalid value"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("result vector fits u32"));
    }
    fn vec_f64(&mut self, v: &[f64]) {
        self.len(v.len());
        for &x in v {
            self.f64(x);
        }
    }
    fn counter(&mut self, c: Counter) {
        self.u64(c.get());
    }
    fn accum(&mut self, t: &TimeAccumulator) {
        self.u64(t.total().as_nanos());
        self.u64(t.events());
    }
}

fn write_mac(w: &mut Writer, m: &MacStats) {
    w.counter(m.mpdus_first_try);
    w.counter(m.mpdus_retried);
    w.counter(m.mpdus_dropped);
    w.counter(m.tx_attempts);
    w.counter(m.responses_sent);
    w.counter(m.responses_with_blob);
    w.counter(m.ack_timeouts);
    w.counter(m.bars_sent);
    w.counter(m.bars_exhausted);
    w.counter(m.rx_garbage);
    w.counter(m.rx_fcs_bad);
    w.accum(&m.acquire_wait_data);
    w.accum(&m.acquire_wait_ack);
    w.accum(&m.airtime_data);
    w.accum(&m.airtime_ack);
    w.accum(&m.airtime_response);
    w.accum(&m.airtime_blob);
    w.counter(m.blob_within_aifs);
    w.counter(m.blob_beyond_aifs);
    w.accum(&m.ll_ack_overhead);
}

fn write_driver(w: &mut Writer, d: &CompressSideStats) {
    w.u64(d.native_acks);
    w.u64(d.native_ack_bytes);
    w.u64(d.hacked_acks);
    w.u64(d.hacked_ack_bytes);
    w.u64(d.reenqueued);
    w.u64(d.dropped_on_flush);
    w.u64(d.timer_flushes);
    w.u64(d.spilled);
    w.u64(d.noop_flushes);
    w.u64(d.forced_native);
}

fn write_sketch(w: &mut Writer, s: &QuantileSketch) {
    let (count, sum, min, max, entries) = s.to_sparse();
    w.u64(count);
    w.u64(sum);
    w.u64(min);
    w.u64(max);
    w.len(entries.len());
    for (i, c) in entries {
        w.u32(u32::from(i));
        w.u64(c);
    }
}

fn write_tcp(w: &mut Writer, t: &TcpStats) {
    w.u64(t.data_segments_sent);
    w.u64(t.retransmits);
    w.u64(t.fast_retransmits);
    w.u64(t.timeouts);
    w.u64(t.acks_sent);
    w.u64(t.dupacks_received);
    w.u64(t.bytes_delivered);
    w.u64(t.bytes_acked);
    w.u64(t.rtt_samples);
    w.u64(t.rtt_sum_us);
}

/// Serialize a [`RunResult`] under [`RESULT_SCHEMA_VERSION`].
pub fn encode_run_result(r: &RunResult) -> Vec<u8> {
    let mut w = Writer {
        out: Vec::with_capacity(1024),
    };
    w.out.extend_from_slice(MAGIC);
    w.u32(RESULT_SCHEMA_VERSION);
    w.vec_f64(&r.flow_goodput_mbps);
    w.f64(r.aggregate_goodput_mbps);
    w.vec_f64(&r.flow_goodput_full_mbps);
    w.len(r.flow_completion.len());
    for c in &r.flow_completion {
        match c {
            None => w.u8(0),
            Some(t) => {
                w.u8(1);
                w.u64(t.as_nanos());
            }
        }
    }
    w.len(r.mac.len());
    for m in &r.mac {
        write_mac(&mut w, m);
    }
    w.len(r.driver.len());
    for d in &r.driver {
        write_driver(&mut w, d);
    }
    w.len(r.driver_ap.len());
    for d in &r.driver_ap {
        write_driver(&mut w, d);
    }
    w.len(r.compressor.len());
    for c in &r.compressor {
        w.u64(c.compressed);
        w.u64(c.compressed_bytes);
        w.u64(c.original_bytes);
        w.u64(c.declined);
    }
    w.u64(r.decompressor.decompressed);
    w.u64(r.decompressor.duplicates);
    w.u64(r.decompressor.crc_failures);
    w.u64(r.decompressor.no_context);
    w.u64(r.decompressor.malformed);
    w.u64(r.ppdus);
    w.u64(r.events_dispatched);
    w.u64(r.collisions);
    w.u64(r.ap_queue_drops);
    w.len(r.sender_tcp.len());
    for t in &r.sender_tcp {
        write_tcp(&mut w, t);
    }
    w.len(r.receiver_tcp.len());
    for t in &r.receiver_tcp {
        write_tcp(&mut w, t);
    }
    w.f64(r.blob_within_aifs);
    w.len(r.supervisor.len());
    for s in &r.supervisor {
        w.u8(s.final_state.code());
        w.u64(s.stats.degraded);
        w.u64(s.stats.fallbacks);
        w.u64(s.stats.probations);
        w.u64(s.stats.recoveries);
        w.u64(s.stats.refreshes);
        w.u64(s.stats.handoffs);
        w.u64(s.stats.est_divergence);
    }
    w.vec_f64(&r.flow_goodput_final_mbps);
    w.u64(r.roams);
    w.len(r.classes.len());
    for c in &r.classes {
        w.u8(c.class.code());
        w.u64(c.flows as u64);
        w.u64(c.transfers);
        w.f64(c.goodput_mbps);
        write_sketch(&mut w, &c.fct);
        write_sketch(&mut w, &c.latency);
        write_sketch(&mut w, &c.jitter);
    }
    w.out
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn len(&mut self) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        // A length that could not possibly fit the remaining bytes is
        // corruption, not a huge allocation request.
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }
    fn vec_f64(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.len()?;
        (0..n).map(|_| self.f64()).collect()
    }
    fn counter(&mut self) -> Result<Counter, CodecError> {
        Ok(Counter::from_value(self.u64()?))
    }
    fn accum(&mut self) -> Result<TimeAccumulator, CodecError> {
        let total = SimDuration::from_nanos(self.u64()?);
        let events = self.u64()?;
        Ok(TimeAccumulator::from_parts(total, events))
    }
}

fn read_mac(r: &mut Reader) -> Result<MacStats, CodecError> {
    Ok(MacStats {
        mpdus_first_try: r.counter()?,
        mpdus_retried: r.counter()?,
        mpdus_dropped: r.counter()?,
        tx_attempts: r.counter()?,
        responses_sent: r.counter()?,
        responses_with_blob: r.counter()?,
        ack_timeouts: r.counter()?,
        bars_sent: r.counter()?,
        bars_exhausted: r.counter()?,
        rx_garbage: r.counter()?,
        rx_fcs_bad: r.counter()?,
        acquire_wait_data: r.accum()?,
        acquire_wait_ack: r.accum()?,
        airtime_data: r.accum()?,
        airtime_ack: r.accum()?,
        airtime_response: r.accum()?,
        airtime_blob: r.accum()?,
        blob_within_aifs: r.counter()?,
        blob_beyond_aifs: r.counter()?,
        ll_ack_overhead: r.accum()?,
    })
}

fn read_driver(r: &mut Reader) -> Result<CompressSideStats, CodecError> {
    Ok(CompressSideStats {
        native_acks: r.u64()?,
        native_ack_bytes: r.u64()?,
        hacked_acks: r.u64()?,
        hacked_ack_bytes: r.u64()?,
        reenqueued: r.u64()?,
        dropped_on_flush: r.u64()?,
        timer_flushes: r.u64()?,
        spilled: r.u64()?,
        noop_flushes: r.u64()?,
        forced_native: r.u64()?,
    })
}

fn read_sketch(r: &mut Reader) -> Result<QuantileSketch, CodecError> {
    let count = r.u64()?;
    let sum = r.u64()?;
    let min = r.u64()?;
    let max = r.u64()?;
    let n = r.len()?;
    let entries = (0..n)
        .map(|_| {
            let i = u16::try_from(r.u32()?).map_err(|_| CodecError::BadValue)?;
            Ok((i, r.u64()?))
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    QuantileSketch::from_sparse(count, sum, min, max, &entries).ok_or(CodecError::BadValue)
}

fn read_tcp(r: &mut Reader) -> Result<TcpStats, CodecError> {
    Ok(TcpStats {
        data_segments_sent: r.u64()?,
        retransmits: r.u64()?,
        fast_retransmits: r.u64()?,
        timeouts: r.u64()?,
        acks_sent: r.u64()?,
        dupacks_received: r.u64()?,
        bytes_delivered: r.u64()?,
        bytes_acked: r.u64()?,
        rtt_samples: r.u64()?,
        rtt_sum_us: r.u64()?,
    })
}

/// Deserialize a [`RunResult`] previously produced by
/// [`encode_run_result`]. Fails with [`CodecError::SchemaMismatch`]
/// when the stored schema version differs from this build's.
pub fn decode_run_result(bytes: &[u8]) -> Result<RunResult, CodecError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u32()?;
    if version != RESULT_SCHEMA_VERSION {
        return Err(CodecError::SchemaMismatch {
            found: version,
            expected: RESULT_SCHEMA_VERSION,
        });
    }
    let flow_goodput_mbps = r.vec_f64()?;
    let aggregate_goodput_mbps = r.f64()?;
    let flow_goodput_full_mbps = r.vec_f64()?;
    let n = r.len()?;
    let flow_completion = (0..n)
        .map(|_| match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(SimTime::from_nanos(r.u64()?))),
            _ => Err(CodecError::BadValue),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let n = r.len()?;
    let mac = (0..n).map(|_| read_mac(&mut r)).collect::<Result<_, _>>()?;
    let n = r.len()?;
    let driver = (0..n)
        .map(|_| read_driver(&mut r))
        .collect::<Result<_, _>>()?;
    let n = r.len()?;
    let driver_ap = (0..n)
        .map(|_| read_driver(&mut r))
        .collect::<Result<_, _>>()?;
    let n = r.len()?;
    let compressor = (0..n)
        .map(|_| {
            Ok(CompressStats {
                compressed: r.u64()?,
                compressed_bytes: r.u64()?,
                original_bytes: r.u64()?,
                declined: r.u64()?,
            })
        })
        .collect::<Result<_, CodecError>>()?;
    let decompressor = DecompressStats {
        decompressed: r.u64()?,
        duplicates: r.u64()?,
        crc_failures: r.u64()?,
        no_context: r.u64()?,
        malformed: r.u64()?,
    };
    let ppdus = r.u64()?;
    let events_dispatched = r.u64()?;
    let collisions = r.u64()?;
    let ap_queue_drops = r.u64()?;
    let n = r.len()?;
    let sender_tcp = (0..n).map(|_| read_tcp(&mut r)).collect::<Result<_, _>>()?;
    let n = r.len()?;
    let receiver_tcp = (0..n).map(|_| read_tcp(&mut r)).collect::<Result<_, _>>()?;
    let blob_within_aifs = r.f64()?;
    let n = r.len()?;
    let supervisor = (0..n)
        .map(|_| {
            let final_state = FlowHealth::from_code(r.u8()?).ok_or(CodecError::BadValue)?;
            Ok(SupervisorReport {
                final_state,
                stats: SupervisorStats {
                    degraded: r.u64()?,
                    fallbacks: r.u64()?,
                    probations: r.u64()?,
                    recoveries: r.u64()?,
                    refreshes: r.u64()?,
                    handoffs: r.u64()?,
                    est_divergence: r.u64()?,
                },
            })
        })
        .collect::<Result<_, CodecError>>()?;
    let flow_goodput_final_mbps = r.vec_f64()?;
    let roams = r.u64()?;
    let n = r.len()?;
    let classes = (0..n)
        .map(|_| {
            let class = TrafficClass::from_code(r.u8()?).ok_or(CodecError::BadValue)?;
            Ok(ClassReport {
                class,
                flows: usize::try_from(r.u64()?).map_err(|_| CodecError::BadValue)?,
                transfers: r.u64()?,
                goodput_mbps: r.f64()?,
                fct: read_sketch(&mut r)?,
                latency: read_sketch(&mut r)?,
                jitter: read_sketch(&mut r)?,
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    if r.pos != bytes.len() {
        // Trailing bytes mean the shapes disagree even though the
        // version matched — treat as corruption.
        return Err(CodecError::BadValue);
    }
    Ok(RunResult {
        flow_goodput_mbps,
        aggregate_goodput_mbps,
        flow_goodput_full_mbps,
        flow_completion,
        classes,
        mac,
        driver,
        driver_ap,
        compressor,
        decompressor,
        ppdus,
        events_dispatched,
        collisions,
        ap_queue_drops,
        sender_tcp,
        receiver_tcp,
        blob_within_aifs,
        supervisor,
        flow_goodput_final_mbps,
        roams,
    })
}

/// Byte offset of the schema version field inside an encoded result —
/// exposed so tests (and only tests) can forge a bumped version.
pub const SCHEMA_VERSION_OFFSET: usize = MAGIC.len();

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::HackMode;
    use crate::scenario::ScenarioBuilder;
    use crate::sim::run;
    use hack_sim::SimDuration;

    fn small_result() -> RunResult {
        let cfg = ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData)
            .duration(SimDuration::from_millis(400))
            .build();
        run(cfg)
    }

    #[test]
    fn round_trip_is_exact() {
        let r = small_result();
        let bytes = encode_run_result(&r);
        let d = decode_run_result(&bytes).expect("decodes");
        // Bit-exact float fields and equal counters: re-encoding the
        // decoded result must reproduce the byte string.
        assert_eq!(bytes, encode_run_result(&d));
        assert_eq!(
            r.aggregate_goodput_mbps.to_bits(),
            d.aggregate_goodput_mbps.to_bits()
        );
        assert_eq!(r.events_dispatched, d.events_dispatched);
        assert_eq!(r.mac.len(), d.mac.len());
        assert_eq!(
            r.mac[0].mpdus_first_try.get(),
            d.mac[0].mpdus_first_try.get()
        );
        assert_eq!(r.mac[0].airtime_data.total(), d.mac[0].airtime_data.total());
    }

    #[test]
    fn bumped_version_is_rejected() {
        let r = small_result();
        let mut bytes = encode_run_result(&r);
        let v = RESULT_SCHEMA_VERSION + 1;
        bytes[SCHEMA_VERSION_OFFSET..SCHEMA_VERSION_OFFSET + 4].copy_from_slice(&v.to_le_bytes());
        match decode_run_result(&bytes) {
            Err(CodecError::SchemaMismatch { found, expected }) => {
                assert_eq!(found, v);
                assert_eq!(expected, RESULT_SCHEMA_VERSION);
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_and_magic_detected() {
        let r = small_result();
        let bytes = encode_run_result(&r);
        assert!(matches!(
            decode_run_result(&bytes[..bytes.len() - 1]),
            Err(CodecError::BadValue | CodecError::Truncated)
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(decode_run_result(&bad), Err(CodecError::BadMagic)));
    }
}
