//! First-class traffic models — the per-flow workload API.
//!
//! Every scenario before this layer ran the paper's workload: one
//! saturating bulk transfer per client. [`TrafficModel`] makes the
//! workload a per-flow property of the scenario instead:
//!
//! * [`TrafficModel::BulkDownload`] / [`TrafficModel::BulkUpload`] /
//!   [`TrafficModel::UdpDownload`] — the three legacy
//!   [`TrafficKind`] workloads, unchanged (and digest-identical).
//! * [`TrafficModel::ShortFlows`] — web-like request/response flows:
//!   sizes drawn per-flow from a deterministic [`SizeDist`]
//!   (bounded Pareto or lognormal), separated by think times from an
//!   [`ArrivalDist`]; the TCP connection is reused or torn down and
//!   re-established per transfer. This is where HACK's per-flow ROHC
//!   context setup cost actually bites.
//! * [`TrafficModel::Bidirectional`] — bulk transfers in *both*
//!   directions at once, so the client driver and the AP driver each
//!   hold and compress the ACK stream of the opposite data stream —
//!   the case the paper explicitly punts on.
//! * [`TrafficModel::Cbr`] — VoIP-style constant-bitrate UDP riding
//!   the same cell as HACK flows; per-packet one-way latency and
//!   jitter feed the per-class quantile sketches.
//! * [`TrafficModel::OnOff`] — bursty on/off sources (CBR during ON,
//!   silent during OFF, both period lengths drawn per-cycle).
//!
//! All randomness is drawn from a dedicated per-flow RNG fork, so any
//! mix of models is deterministic (same seed ⇒ byte-identical trace
//! digest) and adding a model to one flow never perturbs another.

use hack_sim::{SimDuration, SimRng};

use crate::scenario::TrafficKind;

/// A deterministic flow-size distribution, sampled per transfer from
/// the flow's own RNG fork. All sizes are in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDist {
    /// Every transfer is exactly this many bytes.
    Fixed(u64),
    /// Bounded Pareto: heavy-tailed web-like sizes in `[min, max]`.
    BoundedPareto {
        /// Tail index (smaller = heavier tail; web flows ≈ 1.2).
        alpha: f64,
        /// Smallest transfer (bytes).
        min: u64,
        /// Largest transfer (bytes).
        max: u64,
    },
    /// Lognormal with the given log-space mean/deviation, truncated
    /// above at `max`.
    LogNormal {
        /// Mean of `ln(size)`.
        mu: f64,
        /// Std-dev of `ln(size)`.
        sigma: f64,
        /// Truncation bound (bytes).
        max: u64,
    },
}

impl SizeDist {
    /// Draw one transfer size.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        match *self {
            SizeDist::Fixed(n) => n,
            SizeDist::BoundedPareto { alpha, min, max } => {
                let (lo, hi) = (min.max(1) as f64, max.max(min.max(1)) as f64);
                // Inverse-CDF of the Pareto truncated to [lo, hi]:
                // x = lo / (1 − u·(1 − (lo/hi)^α))^(1/α).
                let u = rng.unit().min(1.0 - 1e-12);
                let ratio = (lo / hi).powf(alpha);
                let x = lo / (1.0 - u * (1.0 - ratio)).powf(1.0 / alpha);
                (x as u64).clamp(min, max)
            }
            SizeDist::LogNormal { mu, sigma, max } => {
                // Box–Muller on two unit draws (both always consumed,
                // keeping the draw count input-independent).
                let u1 = rng.unit().max(1e-12);
                let u2 = rng.unit();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let x = (mu + sigma * z).exp();
                (x as u64).min(max)
            }
        }
    }
}

/// A deterministic inter-event-time distribution (think times, ON/OFF
/// period lengths), sampled from the flow's own RNG fork. Samples are
/// clamped to ≥ 1 µs so a degenerate distribution can never schedule
/// a zero-length gap loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalDist {
    /// Every gap is exactly this long.
    Fixed(SimDuration),
    /// Exponential (Poisson process) with the given mean.
    Exponential {
        /// Mean gap.
        mean: SimDuration,
    },
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Shortest gap.
        lo: SimDuration,
        /// Longest gap.
        hi: SimDuration,
    },
}

impl ArrivalDist {
    /// Draw one gap (≥ 1 µs).
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let floor = SimDuration::from_micros(1);
        match *self {
            ArrivalDist::Fixed(d) => d.max(floor),
            ArrivalDist::Exponential { mean } => {
                let u = rng.unit().min(1.0 - 1e-12);
                let ns = -(1.0 - u).ln() * mean.as_nanos() as f64;
                SimDuration::from_nanos(ns as u64).max(floor)
            }
            ArrivalDist::Uniform { lo, hi } => {
                let (a, b) = (lo.as_nanos(), hi.as_nanos().max(lo.as_nanos()));
                let ns = a + (rng.unit() * (b - a) as f64) as u64;
                SimDuration::from_nanos(ns.min(b)).max(floor)
            }
        }
    }
}

/// Web-like short-flow workload parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShortFlowConfig {
    /// Transfer-size distribution (one draw per transfer).
    pub sizes: SizeDist,
    /// Think time between a transfer completing and the next starting.
    pub think: ArrivalDist,
    /// Reuse the TCP connection across transfers (persistent
    /// connection) instead of tearing it down and re-establishing —
    /// with `false`, every transfer pays the handshake *and* fresh
    /// ROHC context setup.
    pub reuse: bool,
}

impl Default for ShortFlowConfig {
    /// Web-ish defaults: bounded-Pareto sizes (α = 1.2, 4 KB – 2 MB),
    /// exponential 200 ms think time, persistent connections.
    fn default() -> Self {
        ShortFlowConfig {
            sizes: SizeDist::BoundedPareto {
                alpha: 1.2,
                min: 4 * 1024,
                max: 2 * 1024 * 1024,
            },
            think: ArrivalDist::Exponential {
                mean: SimDuration::from_millis(200),
            },
            reuse: true,
        }
    }
}

/// VoIP-style constant-bitrate UDP parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbrConfig {
    /// Offered rate in kbit/s (payload bytes only).
    pub rate_kbps: u64,
    /// UDP payload per packet (bytes).
    pub payload_bytes: u32,
}

impl Default for CbrConfig {
    /// G.711-ish defaults: 64 kbit/s in 160-byte frames (20 ms pacing).
    fn default() -> Self {
        CbrConfig {
            rate_kbps: 64,
            payload_bytes: 160,
        }
    }
}

/// Bursty on/off source parameters: CBR during ON periods, silence
/// during OFF, period lengths drawn per cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnOffConfig {
    /// ON-period length distribution.
    pub on: ArrivalDist,
    /// OFF-period length distribution.
    pub off: ArrivalDist,
    /// Offered rate during ON periods, kbit/s.
    pub rate_kbps: u64,
    /// UDP payload per packet (bytes).
    pub payload_bytes: u32,
}

impl Default for OnOffConfig {
    /// Exponential 500 ms ON / 500 ms OFF bursts of 2 Mbit/s
    /// 1200-byte packets.
    fn default() -> Self {
        OnOffConfig {
            on: ArrivalDist::Exponential {
                mean: SimDuration::from_millis(500),
            },
            off: ArrivalDist::Exponential {
                mean: SimDuration::from_millis(500),
            },
            rate_kbps: 2_000,
            payload_bytes: 1_200,
        }
    }
}

/// The per-flow traffic model. Replaces the closed [`TrafficKind`]
/// enum (which remains as a compat shim: every `TrafficKind` converts
/// losslessly via `From`, and scenarios expressible as a `TrafficKind`
/// keep their stable hashes and trace digests byte-for-byte).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficModel {
    /// Bulk TCP download (server → client) — the paper's main case.
    BulkDownload,
    /// Bulk TCP upload (client → server) — the "wireless backup" case.
    BulkUpload,
    /// Saturating unidirectional UDP download (capacity baseline).
    UdpDownload,
    /// Web-like short TCP flows with think times between transfers.
    ShortFlows(ShortFlowConfig),
    /// Bulk TCP in both directions at once: the client uploads while
    /// it downloads, so *both* drivers hold and compress ACKs.
    Bidirectional,
    /// VoIP-style constant-bitrate UDP download.
    Cbr(CbrConfig),
    /// Bursty on/off UDP download.
    OnOff(OnOffConfig),
}

/// Coarse flow classes for the per-class metrics API. Codes are stable
/// (they appear in the result codec): Bulk=0, Udp=1, Short=2, Bidir=3,
/// Cbr=4, OnOff=5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TrafficClass {
    /// Saturating unidirectional bulk TCP (download or upload).
    Bulk,
    /// Saturating UDP.
    Udp,
    /// Short flows.
    Short,
    /// Bidirectional bulk.
    Bidir,
    /// Constant-bitrate UDP.
    Cbr,
    /// On/off bursty UDP.
    OnOff,
}

impl TrafficClass {
    /// Stable wire code of the class.
    pub fn code(self) -> u8 {
        match self {
            TrafficClass::Bulk => 0,
            TrafficClass::Udp => 1,
            TrafficClass::Short => 2,
            TrafficClass::Bidir => 3,
            TrafficClass::Cbr => 4,
            TrafficClass::OnOff => 5,
        }
    }

    /// Class from its stable wire code.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => TrafficClass::Bulk,
            1 => TrafficClass::Udp,
            2 => TrafficClass::Short,
            3 => TrafficClass::Bidir,
            4 => TrafficClass::Cbr,
            5 => TrafficClass::OnOff,
            _ => return None,
        })
    }

    /// Human-readable class name (report tables).
    pub fn name(self) -> &'static str {
        match self {
            TrafficClass::Bulk => "bulk",
            TrafficClass::Udp => "udp",
            TrafficClass::Short => "short",
            TrafficClass::Bidir => "bidir",
            TrafficClass::Cbr => "cbr",
            TrafficClass::OnOff => "onoff",
        }
    }

    /// All classes in wire-code order.
    pub const ALL: [TrafficClass; 6] = [
        TrafficClass::Bulk,
        TrafficClass::Udp,
        TrafficClass::Short,
        TrafficClass::Bidir,
        TrafficClass::Cbr,
        TrafficClass::OnOff,
    ];
}

impl TrafficModel {
    /// The legacy [`TrafficKind`] this model is exactly equivalent to,
    /// if any. Scenarios whose every flow has a legacy kind encode
    /// and hash exactly as they did before the model layer existed.
    pub fn legacy_kind(&self) -> Option<TrafficKind> {
        match self {
            TrafficModel::BulkDownload => Some(TrafficKind::TcpDownload),
            TrafficModel::BulkUpload => Some(TrafficKind::TcpUpload),
            TrafficModel::UdpDownload => Some(TrafficKind::UdpDownload),
            _ => None,
        }
    }

    /// Coarse metrics class of the model.
    pub fn class(&self) -> TrafficClass {
        match self {
            TrafficModel::BulkDownload | TrafficModel::BulkUpload => TrafficClass::Bulk,
            TrafficModel::UdpDownload => TrafficClass::Udp,
            TrafficModel::ShortFlows(_) => TrafficClass::Short,
            TrafficModel::Bidirectional => TrafficClass::Bidir,
            TrafficModel::Cbr(_) => TrafficClass::Cbr,
            TrafficModel::OnOff(_) => TrafficClass::OnOff,
        }
    }

    /// Whether the flow runs TCP endpoints (and therefore an ACK
    /// stream HACK can compress).
    pub fn is_tcp(&self) -> bool {
        !matches!(
            self,
            TrafficModel::UdpDownload | TrafficModel::Cbr(_) | TrafficModel::OnOff(_)
        )
    }

    /// Whether the flow is UDP paced from the wired side (CBR and
    /// on/off sources).
    pub fn is_paced_udp(&self) -> bool {
        matches!(self, TrafficModel::Cbr(_) | TrafficModel::OnOff(_))
    }
}

impl From<TrafficKind> for TrafficModel {
    fn from(kind: TrafficKind) -> Self {
        match kind {
            TrafficKind::TcpDownload => TrafficModel::BulkDownload,
            TrafficKind::TcpUpload => TrafficModel::BulkUpload,
            TrafficKind::UdpDownload => TrafficModel::UdpDownload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_model() {
        for kind in [
            TrafficKind::TcpDownload,
            TrafficKind::TcpUpload,
            TrafficKind::UdpDownload,
        ] {
            let model = TrafficModel::from(kind);
            assert_eq!(model.legacy_kind(), Some(kind));
        }
        assert_eq!(
            TrafficModel::ShortFlows(ShortFlowConfig::default()).legacy_kind(),
            None
        );
        assert_eq!(TrafficModel::Bidirectional.legacy_kind(), None);
    }

    #[test]
    fn class_codes_round_trip() {
        for class in TrafficClass::ALL {
            assert_eq!(TrafficClass::from_code(class.code()), Some(class));
        }
        assert_eq!(TrafficClass::from_code(6), None);
    }

    #[test]
    fn pareto_samples_bounded_and_deterministic() {
        let dist = SizeDist::BoundedPareto {
            alpha: 1.2,
            min: 4_096,
            max: 2 * 1024 * 1024,
        };
        let mut a = SimRng::new(7).fork(1);
        let mut b = SimRng::new(7).fork(1);
        let mut below_64k = 0;
        for _ in 0..2_000 {
            let x = dist.sample(&mut a);
            assert_eq!(x, dist.sample(&mut b), "same fork ⇒ same draws");
            assert!((4_096..=2 * 1024 * 1024).contains(&x));
            if x < 64 * 1024 {
                below_64k += 1;
            }
        }
        // Heavy tail, light body: most flows are small.
        assert!(below_64k > 1_000, "pareto body too thin: {below_64k}");
    }

    #[test]
    fn lognormal_truncated() {
        let dist = SizeDist::LogNormal {
            mu: 10.0,
            sigma: 1.5,
            max: 100_000,
        };
        let mut rng = SimRng::new(3).fork(9);
        for _ in 0..2_000 {
            assert!(dist.sample(&mut rng) <= 100_000);
        }
    }

    #[test]
    fn arrival_samples_floor_at_one_micro() {
        let mut rng = SimRng::new(1).fork(2);
        let zero = ArrivalDist::Fixed(SimDuration::ZERO);
        assert_eq!(zero.sample(&mut rng), SimDuration::from_micros(1));
        let exp = ArrivalDist::Exponential {
            mean: SimDuration::from_nanos(1),
        };
        for _ in 0..100 {
            assert!(exp.sample(&mut rng) >= SimDuration::from_micros(1));
        }
        let uni = ArrivalDist::Uniform {
            lo: SimDuration::from_millis(1),
            hi: SimDuration::from_millis(2),
        };
        for _ in 0..100 {
            let d = uni.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(1) && d <= SimDuration::from_millis(2));
        }
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mean = SimDuration::from_millis(200);
        let dist = ArrivalDist::Exponential { mean };
        let mut rng = SimRng::new(42).fork(5);
        let total: u64 = (0..4_000).map(|_| dist.sample(&mut rng).as_nanos()).sum();
        let avg = total as f64 / 4_000.0;
        let want = mean.as_nanos() as f64;
        assert!((avg - want).abs() / want < 0.1, "avg {avg} vs mean {want}");
    }
}
