//! The MSDU type carried through the simulated network: an IPv4 packet.

use hack_mac::Msdu;
use hack_tcp::{Ipv4Packet, Transport};

/// A network packet as the MAC sees it (an MSDU).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetPacket(pub Ipv4Packet);

impl NetPacket {
    /// The wrapped IPv4 packet.
    pub fn ip(&self) -> &Ipv4Packet {
        &self.0
    }

    /// Payload bytes carried for the application (TCP payload or UDP
    /// payload), for goodput accounting.
    pub fn app_payload_len(&self) -> u32 {
        match &self.0.transport {
            Transport::Tcp(t) => t.payload_len,
            Transport::Udp { payload_len, .. } => *payload_len,
        }
    }

    /// Is this a pure TCP acknowledgment?
    pub fn is_pure_tcp_ack(&self) -> bool {
        matches!(&self.0.transport, Transport::Tcp(t) if t.is_pure_ack())
    }
}

impl Msdu for NetPacket {
    fn wire_len(&self) -> u32 {
        self.0.wire_len()
    }

    fn is_transport_ack(&self) -> bool {
        self.is_pure_tcp_ack()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tcp::{flags, Ipv4Addr, TcpSegment, TcpSeq};

    fn tcp_pkt(payload: u32, fl: u8) -> NetPacket {
        NetPacket(Ipv4Packet {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(192, 168, 0, 2),
            ident: 1,
            ttl: 64,
            transport: Transport::Tcp(TcpSegment {
                src_port: 80,
                dst_port: 5000,
                seq: TcpSeq(0),
                ack: TcpSeq(0),
                flags: fl,
                window: 1000,
                options: Default::default(),
                payload_len: payload,
            }),
        })
    }

    #[test]
    fn msdu_len_is_ip_len() {
        let p = tcp_pkt(1460, flags::ACK | flags::PSH);
        assert_eq!(p.wire_len(), 20 + 20 + 1460);
        assert_eq!(p.app_payload_len(), 1460);
    }

    #[test]
    fn transport_ack_detection() {
        assert!(tcp_pkt(0, flags::ACK).is_transport_ack());
        assert!(!tcp_pkt(100, flags::ACK).is_transport_ack());
        assert!(!tcp_pkt(0, flags::ACK | flags::SYN).is_transport_ack());
        let udp = NetPacket(Ipv4Packet {
            src: Ipv4Addr::new(1, 1, 1, 1),
            dst: Ipv4Addr::new(2, 2, 2, 2),
            ident: 0,
            ttl: 64,
            transport: Transport::Udp {
                src_port: 1,
                dst_port: 2,
                payload_len: 1472,
            },
        });
        assert!(!udp.is_transport_ack());
        assert_eq!(udp.wire_len(), 1500);
        assert_eq!(udp.app_payload_len(), 1472);
    }
}
