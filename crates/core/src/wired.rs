//! The wired backhaul between the AP and the remote server.
//!
//! The paper's §4.3 setup: *"The wired link between the server and the
//! AP has a latency of one millisecond and a bit-rate of 500 Mbps."*
//! Modelled as two independent FIFO serializers (one per direction) with
//! a fixed propagation delay and no loss.

use hack_sim::{SimDuration, SimTime};
use hack_tcp::Ipv4Packet;

/// One direction of the full-duplex wired link.
#[derive(Debug, Clone)]
struct Direction {
    /// When the serializer becomes free.
    busy_until: SimTime,
}

/// A full-duplex point-to-point wired link.
#[derive(Debug, Clone)]
pub struct WiredLink {
    rate_bps: u64,
    prop_delay: SimDuration,
    to_ap: Direction,
    to_server: Direction,
    /// Total packets carried (both directions).
    pub packets: u64,
    /// Total bytes carried.
    pub bytes: u64,
}

impl WiredLink {
    /// A link at `rate_bps` with propagation delay `prop_delay`.
    pub fn new(rate_bps: u64, prop_delay: SimDuration) -> Self {
        assert!(rate_bps > 0);
        WiredLink {
            rate_bps,
            prop_delay,
            to_ap: Direction {
                busy_until: SimTime::ZERO,
            },
            to_server: Direction {
                busy_until: SimTime::ZERO,
            },
            packets: 0,
            bytes: 0,
        }
    }

    /// The paper's 500 Mbps / 1 ms backhaul.
    pub fn paper_backhaul() -> Self {
        WiredLink::new(500_000_000, SimDuration::from_millis(1))
    }

    /// Transmit `pkt` toward the AP (`to_ap = true`) or the server.
    /// Returns the delivery time at the far end.
    pub fn send(&mut self, to_ap: bool, pkt: &Ipv4Packet, now: SimTime) -> SimTime {
        let dir = if to_ap {
            &mut self.to_ap
        } else {
            &mut self.to_server
        };
        let start = now.max(dir.busy_until);
        let ser = SimDuration::for_bits(u64::from(pkt.wire_len()) * 8, self.rate_bps);
        dir.busy_until = start + ser;
        self.packets += 1;
        self.bytes += u64::from(pkt.wire_len());
        dir.busy_until + self.prop_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tcp::{Ipv4Addr, Transport};

    fn pkt(len: u32) -> Ipv4Packet {
        Ipv4Packet {
            src: Ipv4Addr::new(1, 1, 1, 1),
            dst: Ipv4Addr::new(2, 2, 2, 2),
            ident: 0,
            ttl: 64,
            transport: Transport::Udp {
                src_port: 1,
                dst_port: 2,
                payload_len: len - 28,
            },
        }
    }

    #[test]
    fn single_packet_latency() {
        let mut l = WiredLink::paper_backhaul();
        let t0 = SimTime::from_millis(10);
        let arrive = l.send(true, &pkt(1500), t0);
        // 1500 B at 500 Mbps = 24 µs serialization + 1 ms propagation.
        assert_eq!(
            arrive,
            t0 + SimDuration::from_micros(24) + SimDuration::from_millis(1)
        );
    }

    #[test]
    fn serialization_queues_back_to_back() {
        let mut l = WiredLink::paper_backhaul();
        let t0 = SimTime::from_millis(10);
        let a1 = l.send(true, &pkt(1500), t0);
        let a2 = l.send(true, &pkt(1500), t0);
        assert_eq!(a2.duration_since(a1), SimDuration::from_micros(24));
    }

    #[test]
    fn directions_are_independent() {
        let mut l = WiredLink::paper_backhaul();
        let t0 = SimTime::from_millis(10);
        let a1 = l.send(true, &pkt(1500), t0);
        let a2 = l.send(false, &pkt(1500), t0);
        assert_eq!(a1, a2, "no cross-direction contention");
    }

    #[test]
    fn idle_gap_resets_serializer() {
        let mut l = WiredLink::paper_backhaul();
        let t0 = SimTime::from_millis(10);
        l.send(true, &pkt(1500), t0);
        let later = t0 + SimDuration::from_millis(5);
        let a = l.send(true, &pkt(1500), later);
        assert_eq!(
            a,
            later + SimDuration::from_micros(24) + SimDuration::from_millis(1)
        );
        assert_eq!(l.packets, 2);
    }
}
