//! Stable content hashing of fully-resolved scenario configurations.
//!
//! The campaign engine's result cache is content-addressed: the cache
//! key for one job is a hash of *everything that determines the run's
//! outcome* — every [`ScenarioConfig`] field, including the seed. Two
//! requirements follow:
//!
//! 1. **Stability.** The hash must be identical across processes,
//!    platforms and runs (so a re-run of an interrupted campaign finds
//!    its cached cells). `std::hash::Hash` + `DefaultHasher` guarantee
//!    neither, so we encode every field into a canonical little-endian
//!    byte string and hash that with FNV-1a/128, both fixed here.
//! 2. **Completeness.** A field that changes behaviour but is missing
//!    from the encoding would alias two different runs onto one cache
//!    entry. The encoding therefore lists every field explicitly and
//!    starts with [`CONFIG_ENCODING_VERSION`], which must be bumped
//!    whenever a field is added, removed, or re-interpreted.
//!
//! Floats are encoded as their IEEE-754 bit patterns; enums as explicit
//! tag bytes; vectors with a length prefix. Nothing here depends on
//! wall-clock, addresses, or map iteration order.

use hack_sim::SimDuration;

use crate::driver::HackMode;
use crate::scenario::{ChannelChange, LossConfig, ScenarioConfig, Standard, TrafficKind};
use crate::supervisor::SupervisorConfig;
use crate::traffic::{ArrivalDist, SizeDist, TrafficModel};
use hack_sim::QueueKind;

/// Version of the canonical [`ScenarioConfig`] encoding. Bump whenever
/// the struct (or the meaning of a field) changes so stale cache
/// entries can never alias a new configuration.
///
/// Version 5 added the traffic-model layer. Configurations whose
/// every flow is expressible as a legacy [`TrafficKind`] (the only
/// configurations that could exist before v5) still encode under
/// [`LEGACY_ENCODING_VERSION`] with the old one-byte traffic tag, so
/// their hashes — and therefore the campaign cache keys and pinned
/// digest names — are byte-identical to pre-model builds.
pub const CONFIG_ENCODING_VERSION: u32 = 5;

/// The pre-traffic-model encoding version still used for
/// legacy-expressible configurations (see
/// [`CONFIG_ENCODING_VERSION`]).
pub const LEGACY_ENCODING_VERSION: u32 = 4;

/// Streaming FNV-1a over 128 bits — small, dependency-free, and stable
/// by construction (the offset basis and prime are spelled out by the
/// FNV reference).
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A hasher at the FNV-1a/128 offset basis.
    pub fn new() -> Self {
        StableHasher {
            state: FNV128_OFFSET,
        }
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Absorb a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorb a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `usize` widened to `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Absorb an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Absorb a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Absorb a duration as nanoseconds.
    pub fn duration(&mut self, d: SimDuration) {
        self.u64(d.as_nanos());
    }

    /// The 128-bit digest, big-endian bytes.
    pub fn finish(&self) -> [u8; 16] {
        self.state.to_be_bytes()
    }

    /// The digest as a 32-character lowercase hex string (cache file
    /// names).
    pub fn finish_hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.finish() {
            use std::fmt::Write;
            let _ = write!(s, "{b:02x}");
        }
        s
    }
}

fn hash_loss(h: &mut StableHasher, loss: &LossConfig) {
    match loss {
        LossConfig::Ideal => h.u8(0),
        LossConfig::PerClient(per) => {
            h.u8(1);
            h.usize(per.len());
            for &p in per {
                h.f64(p);
            }
        }
        LossConfig::SnrDistance(d) => {
            h.u8(2);
            h.f64(*d);
        }
        LossConfig::Burst(g) => {
            h.u8(3);
            h.f64(g.p_enter_bad);
            h.f64(g.p_exit_bad);
            h.f64(g.per_good);
            h.f64(g.per_bad);
        }
    }
}

fn hash_dynamics(h: &mut StableHasher, dynamics: &[crate::scenario::ChannelEvent]) {
    h.usize(dynamics.len());
    for ev in dynamics {
        h.duration(ev.at);
        match ev.change {
            ChannelChange::SnrOffsetDb(db) => {
                h.u8(0);
                h.f64(db);
            }
            ChannelChange::ClientLoss { client, per } => {
                h.u8(1);
                h.usize(client);
                h.f64(per);
            }
            ChannelChange::MoveClient { client, x, y } => {
                h.u8(2);
                h.usize(client);
                h.f64(x);
                h.f64(y);
            }
        }
    }
}

fn hash_roam(h: &mut StableHasher, r: &crate::scenario::RoamConfig) {
    h.usize(r.schedule.len());
    for ev in &r.schedule {
        h.usize(ev.flow);
        h.duration(ev.at);
        h.usize(ev.target_bss);
    }
    match &r.trigger {
        None => h.u8(0),
        Some(t) => {
            h.u8(1);
            h.f64(t.threshold_db);
            h.f64(t.hysteresis_db);
            h.duration(t.min_dwell);
        }
    }
    h.usize(r.paths.len());
    for p in &r.paths {
        h.usize(p.client);
        h.usize(p.waypoints.len());
        for w in &p.waypoints {
            h.duration(w.at);
            h.f64(w.x);
            h.f64(w.y);
        }
    }
    h.duration(r.mobility_tick);
    h.usize(r.ap_hack_capable.len());
    for &b in &r.ap_hack_capable {
        h.bool(b);
    }
    h.duration(r.assoc.scan_delay);
    h.duration(r.assoc.retry_backoff);
    h.u32(r.assoc.max_retries);
    h.f64(r.assoc_fail_prob);
    h.u32(r.rto_clamp_shift);
    h.usize(r.park_cap);
}

fn hash_size_dist(h: &mut StableHasher, d: &SizeDist) {
    match *d {
        SizeDist::Fixed(n) => {
            h.u8(0);
            h.u64(n);
        }
        SizeDist::BoundedPareto { alpha, min, max } => {
            h.u8(1);
            h.f64(alpha);
            h.u64(min);
            h.u64(max);
        }
        SizeDist::LogNormal { mu, sigma, max } => {
            h.u8(2);
            h.f64(mu);
            h.f64(sigma);
            h.u64(max);
        }
    }
}

fn hash_arrival(h: &mut StableHasher, d: &ArrivalDist) {
    match *d {
        ArrivalDist::Fixed(gap) => {
            h.u8(0);
            h.duration(gap);
        }
        ArrivalDist::Exponential { mean } => {
            h.u8(1);
            h.duration(mean);
        }
        ArrivalDist::Uniform { lo, hi } => {
            h.u8(2);
            h.duration(lo);
            h.duration(hi);
        }
    }
}

fn hash_model(h: &mut StableHasher, m: &TrafficModel) {
    match m {
        TrafficModel::BulkDownload => h.u8(0),
        TrafficModel::BulkUpload => h.u8(1),
        TrafficModel::UdpDownload => h.u8(2),
        TrafficModel::ShortFlows(s) => {
            h.u8(3);
            hash_size_dist(h, &s.sizes);
            hash_arrival(h, &s.think);
            h.bool(s.reuse);
        }
        TrafficModel::Bidirectional => h.u8(4),
        TrafficModel::Cbr(c) => {
            h.u8(5);
            h.u64(c.rate_kbps);
            h.u32(c.payload_bytes);
        }
        TrafficModel::OnOff(o) => {
            h.u8(6);
            hash_arrival(h, &o.on);
            hash_arrival(h, &o.off);
            h.u64(o.rate_kbps);
            h.u32(o.payload_bytes);
        }
    }
}

fn hash_supervisor(h: &mut StableHasher, s: &SupervisorConfig) {
    h.u32(s.degrade_score);
    h.u32(s.fallback_score);
    h.duration(s.probation_initial);
    h.duration(s.probation_max);
    h.u32(s.probation_success);
    h.u32(s.decay_good);
}

impl ScenarioConfig {
    /// Canonical 128-bit content hash of this fully-resolved
    /// configuration (every field, seed included). Equal hashes ⇔ equal
    /// configurations, up to FNV collisions; identical across runs,
    /// processes, and platforms — the campaign cache key.
    pub fn stable_hash(&self) -> [u8; 16] {
        let mut h = StableHasher::new();
        self.stable_hash_into(&mut h);
        h.finish()
    }

    /// Hex form of [`ScenarioConfig::stable_hash`].
    pub fn stable_hash_hex(&self) -> String {
        let mut h = StableHasher::new();
        self.stable_hash_into(&mut h);
        h.finish_hex()
    }

    /// Feed the canonical field encoding into an existing hasher.
    pub fn stable_hash_into(&self, h: &mut StableHasher) {
        // Legacy-expressible configs (every flow a TrafficKind, no
        // mix) are exactly the configs that predate the traffic-model
        // layer: they keep the v4 encoding byte-for-byte so cache
        // keys and pinned digest names survive the API redesign.
        let legacy = self.legacy_traffic();
        h.u32(if legacy.is_some() {
            LEGACY_ENCODING_VERSION
        } else {
            CONFIG_ENCODING_VERSION
        });
        match self.standard {
            Standard::Dot11a { rate_mbps } => {
                h.u8(0);
                h.u64(rate_mbps);
            }
            Standard::Dot11n { rate_mbps } => {
                h.u8(1);
                h.u64(rate_mbps);
            }
        }
        h.usize(self.n_clients);
        match self.hack_mode {
            HackMode::Disabled => h.u8(0),
            HackMode::Opportunistic => h.u8(1),
            HackMode::MoreData => h.u8(2),
            HackMode::ExplicitTimer(d) => {
                h.u8(3);
                h.duration(d);
            }
        }
        match legacy {
            Some(kind) => h.u8(match kind {
                TrafficKind::TcpDownload => 0,
                TrafficKind::TcpUpload => 1,
                TrafficKind::UdpDownload => 2,
            }),
            None => {
                hash_model(h, &self.traffic);
                h.usize(self.traffic_mix.len());
                for m in &self.traffic_mix {
                    hash_model(h, m);
                }
            }
        }
        h.bool(self.delayed_ack);
        h.bool(self.server_at_ap);
        h.usize(self.ap_queue_cap);
        hash_loss(h, &self.loss);
        match &self.corrupt {
            None => h.u8(0),
            Some(c) => {
                h.u8(1);
                h.f64(c.data_frac);
                h.f64(c.control_per);
                h.f64(c.fcs_miss);
            }
        }
        hash_dynamics(h, &self.dynamics);
        h.duration(self.stack_delay);
        h.duration(self.dma_delay);
        h.duration(self.duration);
        match self.transfer_bytes {
            None => h.u8(0),
            Some(b) => {
                h.u8(1);
                h.u64(b);
            }
        }
        h.duration(self.stagger);
        h.duration(self.warmup);
        h.u64(self.seed);
        h.bool(self.sora_quirks);
        h.u32(self.rcv_window);
        h.bool(self.disable_sync);
        match self.txop_limit {
            None => h.u8(0),
            Some(d) => {
                h.u8(1);
                h.duration(d);
            }
        }
        match self.retry_limit {
            None => h.u8(0),
            Some(l) => {
                h.u8(1);
                h.u32(l);
            }
        }
        // The queue kind does not change results (the cross-scheduler
        // digest test pins that), but it *is* part of the resolved
        // config; hashing it keeps the key an honest content address.
        h.u8(match self.queue {
            QueueKind::Calendar => 0,
            QueueKind::Heap => 1,
        });
        match &self.supervisor {
            None => h.u8(0),
            Some(s) => {
                h.u8(1);
                hash_supervisor(h, s);
            }
        }
        h.usize(self.client_hack_capable.len());
        for &b in &self.client_hack_capable {
            h.bool(b);
        }
        h.usize(self.held_cap);
        h.u8(match self.cc {
            hack_tcp::CcKind::Reno => 0,
            hack_tcp::CcKind::Cubic => 1,
            hack_tcp::CcKind::Highspeed => 2,
            hack_tcp::CcKind::Bbr => 3,
        });
        h.usize(self.bss.len());
        for b in &self.bss {
            h.f64(b.x);
            h.f64(b.y);
            h.u8(b.channel);
            h.usize(b.n_clients);
        }
        h.f64(self.interference.co_channel_range_m);
        h.f64(self.interference.adjacent_range_m);
        hash_roam(h, &self.roam);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use crate::traffic::{CbrConfig, ShortFlowConfig};

    #[test]
    fn fnv_vectors() {
        // FNV-1a/128 reference vectors.
        let mut h = StableHasher::new();
        h.write(b"");
        assert_eq!(h.finish(), FNV128_OFFSET.to_be_bytes());
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(
            h.finish_hex(),
            format!(
                "{:032x}",
                (FNV128_OFFSET ^ u128::from(b'a')).wrapping_mul(FNV128_PRIME)
            )
        );
    }

    #[test]
    fn hash_is_stable_and_field_sensitive() {
        let a = ScenarioBuilder::dot11n_download(150, 2, HackMode::MoreData).build();
        let b = ScenarioBuilder::dot11n_download(150, 2, HackMode::MoreData).build();
        assert_eq!(a.stable_hash(), b.stable_hash());
        assert_eq!(a.stable_hash_hex().len(), 32);

        let mut c = a.clone();
        c.seed += 1;
        assert_ne!(a.stable_hash(), c.stable_hash(), "seed must key the cache");
        let mut c = a.clone();
        c.held_cap += 1;
        assert_ne!(a.stable_hash(), c.stable_hash(), "trailing fields count");
        let mut c = a.clone();
        c.loss = LossConfig::PerClient(vec![0.01, 0.02]);
        assert_ne!(a.stable_hash(), c.stable_hash());
        let mut c = a.clone();
        c.cc = hack_tcp::CcKind::Cubic;
        assert_ne!(a.stable_hash(), c.stable_hash(), "cc keys the cache");
        let mut c = a.clone();
        c.bss = crate::scenario::BssSpec::enterprise_floor(4, 2);
        assert_ne!(
            a.stable_hash(),
            c.stable_hash(),
            "bss layout keys the cache"
        );
        let mut c = a.clone();
        c.interference.co_channel_range_m += 1.0;
        assert_ne!(
            a.stable_hash(),
            c.stable_hash(),
            "interference ranges key the cache"
        );
        let mut c = a.clone();
        c.roam.schedule.push(crate::scenario::RoamEvent {
            flow: 0,
            at: SimDuration::from_millis(500),
            target_bss: 1,
        });
        assert_ne!(a.stable_hash(), c.stable_hash(), "roams key the cache");
        let mut c = a.clone();
        c.roam.assoc_fail_prob = 0.25;
        assert_ne!(
            a.stable_hash(),
            c.stable_hash(),
            "roam knobs key the cache even with an empty schedule"
        );
    }

    #[test]
    fn hash_distinguishes_adjacent_variants() {
        let mut a = ScenarioBuilder::dot11n_download(150, 1, HackMode::Disabled).build();
        let mut b = a.clone();
        a.loss = LossConfig::SnrDistance(8.0);
        b.loss = LossConfig::PerClient(vec![8.0]);
        assert_ne!(a.stable_hash(), b.stable_hash(), "variant tags matter");
    }

    /// Legacy-expressible configs must hash exactly as they did before
    /// the traffic-model layer: these hex digests were captured on the
    /// pre-model build. A mismatch means every campaign cache key (and
    /// pinned digest name) silently changed.
    #[test]
    fn legacy_hashes_pinned_to_pre_model_build() {
        let pins = [
            (
                ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build(),
                "343798e123392706d53a4b7634e6dc23",
            ),
            (
                ScenarioBuilder::dot11n_download(300, 4, HackMode::Disabled).build(),
                "0629496930e28ddd8ba5403f4346c911",
            ),
            (
                ScenarioBuilder::sora_testbed(2, HackMode::Opportunistic).build(),
                "82e82139413a4ba202a8dbb04d7e3392",
            ),
            (
                ScenarioBuilder::dot11n_download(150, 2, HackMode::MoreData)
                    .traffic(TrafficKind::TcpUpload)
                    .build(),
                "937f6d57102869d2f7078aad25cf8667",
            ),
            (
                ScenarioBuilder::dot11n_download(150, 2, HackMode::MoreData)
                    .traffic(TrafficKind::UdpDownload)
                    .build(),
                "34f7f9765791aaff01aa82278152b038",
            ),
        ];
        for (cfg, want) in pins {
            assert_eq!(cfg.stable_hash_hex(), want, "{:?}", cfg.traffic);
        }
    }

    /// The `From<TrafficKind>` shim routes through the same encoding:
    /// building with a kind or with its converted model is
    /// hash-identical, and the deprecated positional constructors
    /// still produce the same config as the builder presets.
    #[test]
    fn shimmed_kind_hashes_equal_model() {
        for (kind, model) in [
            (TrafficKind::TcpDownload, TrafficModel::BulkDownload),
            (TrafficKind::TcpUpload, TrafficModel::BulkUpload),
            (TrafficKind::UdpDownload, TrafficModel::UdpDownload),
        ] {
            let via_kind = ScenarioBuilder::dot11n_download(150, 2, HackMode::MoreData)
                .traffic(kind)
                .build();
            let via_model = ScenarioBuilder::dot11n_download(150, 2, HackMode::MoreData)
                .traffic(model)
                .build();
            assert_eq!(via_kind.stable_hash(), via_model.stable_hash());
            assert_eq!(via_kind.legacy_traffic(), Some(kind));
        }
        #[allow(deprecated)]
        let shim = ScenarioConfig::dot11n_download(150, 1, HackMode::MoreData);
        let builder = ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build();
        assert_eq!(shim.stable_hash(), builder.stable_hash());
        #[allow(deprecated)]
        let shim = ScenarioConfig::sora_testbed(2, HackMode::MoreData);
        let builder = ScenarioBuilder::sora_testbed(2, HackMode::MoreData).build();
        assert_eq!(shim.stable_hash(), builder.stable_hash());
    }

    /// Non-legacy models leave the legacy hash space entirely (version
    /// tag differs) and are sensitive to their own parameters.
    #[test]
    fn model_hashes_keyed_by_parameters() {
        let base = ScenarioBuilder::dot11n_download(150, 2, HackMode::MoreData)
            .traffic(TrafficModel::ShortFlows(ShortFlowConfig::default()))
            .build();
        assert_eq!(base.legacy_traffic(), None);

        let mut tweaked = base.clone();
        tweaked.traffic = TrafficModel::ShortFlows(ShortFlowConfig {
            reuse: false,
            ..ShortFlowConfig::default()
        });
        assert_ne!(base.stable_hash(), tweaked.stable_hash());

        let mut cbr = base.clone();
        cbr.traffic = TrafficModel::Cbr(CbrConfig::default());
        assert_ne!(base.stable_hash(), cbr.stable_hash());
        let mut cbr2 = cbr.clone();
        cbr2.traffic = TrafficModel::Cbr(CbrConfig {
            rate_kbps: 128,
            ..CbrConfig::default()
        });
        assert_ne!(cbr.stable_hash(), cbr2.stable_hash());

        // A mix keys the cache even when the default model is legacy.
        let mut mixed = ScenarioBuilder::dot11n_download(150, 2, HackMode::MoreData).build();
        mixed.traffic_mix = vec![TrafficModel::BulkDownload, TrafficModel::Bidirectional];
        assert_eq!(mixed.legacy_traffic(), None);
        assert_ne!(
            mixed.stable_hash(),
            ScenarioBuilder::dot11n_download(150, 2, HackMode::MoreData)
                .build()
                .stable_hash()
        );
    }
}
