//! The HACK supervisor — per-flow health monitoring and graceful
//! degradation.
//!
//! PR 3 gave the stack a deterministic fault injector, but a flow whose
//! HACK path is persistently damaged (corrupted blobs, LL-ACK loss
//! streaks, ACK-clock stalls) kept riding LL ACKs and bleeding goodput:
//! nothing above the ROHC CRC reacted to *sustained* pathology. The
//! supervisor closes that loop. It is a per-flow state machine
//!
//! ```text
//! Healthy → Degraded → NativeFallback → Probation → Healthy
//!                         ↑__________________|  (re-fallback, backoff ×2)
//! ```
//!
//! fed by [`HealthSignal`]s the event loop already observes across the
//! stack (ROHC CRC-3 failures, context repairs, LL-ACK timeouts,
//! held-ACK staleness and spills, FCS-bad receptions, RTO stalls), and
//! it answers with [`SupervisorAction`]s the event loop materializes:
//! force the flow onto the native-ACK path (the runtime equivalent of
//! [`HackMode::Disabled`](crate::HackMode::Disabled) without touching
//! the connection), refresh the ROHC contexts, and re-enable HACK after
//! an exponential-backoff probation window.
//!
//! A peer that never negotiated the HACK capability bit (see
//! `hack_mac::capability`) is a *permanent*, clean fallback:
//! [`FlowHealth::PeerIncapable`] is absorbing and schedules no probes.
//!
//! Like every other component in this workspace the supervisor is
//! sans-IO and consumes no randomness: transitions are a pure function
//! of the signal sequence, so the same-seed trace digest stays
//! byte-identical.

use hack_sim::{SimDuration, SimTime};

/// Why a flow fell back to the native-ACK path (the `reason` field of
/// the `SupFallback` trace event).
pub mod fallback_reason {
    /// Accumulated fault score crossed the fallback threshold.
    pub const FAULTS: u32 = 0;
    /// The peer never negotiated the HACK capability bit; the fallback
    /// is permanent (until a roam lands on a capable AP).
    pub const PEER_INCAPABLE: u32 = 1;
    /// An AP handoff blacked out the link: forced native for the
    /// blackout, probation on the new association.
    pub const HANDOFF: u32 = 2;
}

/// Health state of one flow's HACK path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowHealth {
    /// HACK fully operational.
    Healthy,
    /// Faults are accumulating but HACK is still on; recovers to
    /// [`FlowHealth::Healthy`] if good signals decay the score to zero.
    Degraded,
    /// The supervisor forced native ACKs; a probe timer is pending.
    NativeFallback,
    /// HACK re-enabled on trial after a context refresh; a configurable
    /// number of successful blob decodes promotes back to healthy.
    Probation,
    /// The peer is not HACK-capable: permanent clean fallback, no
    /// probes are ever scheduled.
    PeerIncapable,
}

impl FlowHealth {
    /// Short lowercase name for reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            FlowHealth::Healthy => "healthy",
            FlowHealth::Degraded => "degraded",
            FlowHealth::NativeFallback => "native_fallback",
            FlowHealth::Probation => "probation",
            FlowHealth::PeerIncapable => "peer_incapable",
        }
    }

    /// Stable wire code for result serialization (the campaign cache).
    pub fn code(self) -> u8 {
        match self {
            FlowHealth::Healthy => 0,
            FlowHealth::Degraded => 1,
            FlowHealth::NativeFallback => 2,
            FlowHealth::Probation => 3,
            FlowHealth::PeerIncapable => 4,
        }
    }

    /// Inverse of [`FlowHealth::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => FlowHealth::Healthy,
            1 => FlowHealth::Degraded,
            2 => FlowHealth::NativeFallback,
            3 => FlowHealth::Probation,
            4 => FlowHealth::PeerIncapable,
            _ => return None,
        })
    }
}

/// One observation about a flow's HACK path, reported by the event loop
/// from signals the stack already produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthSignal {
    /// A blob segment failed the ROHC CRC-3 on the decompress side.
    RohcCrcFailure,
    /// The decompressor hit a missing/mismatched context or a malformed
    /// blob (context damage needing a native re-sync).
    RohcContextRepair,
    /// The MAC's ACK timer expired while awaiting the peer's response.
    LlAckTimeout,
    /// A held ACK exceeded the staleness limit on the compress side.
    HeldAckStale,
    /// The bounded held queue spilled its oldest ACK to the native path.
    HeldSpill,
    /// A frame from the peer arrived with a bad FCS.
    FcsBad,
    /// The TCP sender's retransmission timer fired with the connection
    /// established — the ACK clock stalled.
    RtoStall,
    /// The CC delivery-rate sampler and the actually observed goodput
    /// disagreed for a sustained window: the estimator the controller
    /// steers by has diverged from reality (ROADMAP item 3).
    EstimatorDivergence,
    /// A blob decoded cleanly end to end (good signal).
    BlobDecoded,
    /// An LL ACK exchange with the peer completed normally (good
    /// signal).
    LlAckOk,
}

impl HealthSignal {
    /// Fault weight added to the health score (0 for good signals).
    pub fn fault_weight(self) -> u32 {
        match self {
            HealthSignal::RohcCrcFailure => 3,
            HealthSignal::RohcContextRepair => 2,
            HealthSignal::LlAckTimeout => 2,
            HealthSignal::HeldAckStale => 2,
            HealthSignal::HeldSpill => 1,
            HealthSignal::FcsBad => 1,
            HealthSignal::RtoStall => 4,
            HealthSignal::EstimatorDivergence => 2,
            HealthSignal::BlobDecoded | HealthSignal::LlAckOk => 0,
        }
    }

    /// Whether this signal indicates the HACK path is working.
    pub fn is_good(self) -> bool {
        matches!(self, HealthSignal::BlobDecoded | HealthSignal::LlAckOk)
    }
}

/// Supervisor thresholds and timing.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Fault score at which a healthy flow is declared degraded.
    pub degrade_score: u32,
    /// Fault score at which a degraded flow is forced native.
    pub fallback_score: u32,
    /// First probation backoff after a fallback.
    pub probation_initial: SimDuration,
    /// Backoff ceiling for repeated fallbacks (exponential doubling
    /// stops here).
    pub probation_max: SimDuration,
    /// Clean blob decodes required during probation to re-enter
    /// healthy.
    pub probation_success: u32,
    /// Score decay per good signal while healthy or degraded.
    pub decay_good: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        // Tuned against the PR 3 fault matrix: high enough that one
        // Gilbert–Elliott loss burst (≈6 frames of LL-ACK timeouts and
        // FCS hits) does not trip a fallback — HACK's own §3.4
        // retention absorbs those — while a sustained storm, where
        // good signals dry up and faults keep arriving, still does.
        SupervisorConfig {
            degrade_score: 16,
            fallback_score: 32,
            probation_initial: SimDuration::from_millis(200),
            probation_max: SimDuration::from_secs(5),
            probation_success: 16,
            decay_good: 3,
        }
    }
}

/// What the supervisor asks the event loop to do. `Note*` variants are
/// pure trace emissions (the supervisor itself holds no trace handle,
/// keeping it sans-IO like the drivers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorAction {
    /// Force the flow's compress sides onto the native-ACK path.
    ForceNative,
    /// Resume HACK operation on the flow's compress sides.
    ReenableHack,
    /// Drop the flow's ROHC contexts on all four components so the next
    /// native ACK re-seeds them cleanly.
    RefreshContexts,
    /// Arm the probation probe timer at the given time.
    ScheduleProbe(SimTime),
    /// Emit `SupFlowDegraded` with the score at the transition.
    NoteDegraded {
        /// Fault score when the degrade threshold was crossed.
        score: u32,
    },
    /// Emit `SupFallback`.
    NoteFallback {
        /// See [`fallback_reason`].
        reason: u32,
        /// The probation backoff armed at this fallback (zero when
        /// permanent).
        backoff: SimDuration,
    },
    /// Emit `SupProbation`.
    NoteProbation {
        /// 1-based cumulative probation attempt number.
        attempt: u64,
    },
    /// Emit `SupRecovered`.
    NoteRecovered {
        /// 0 = recovered from Degraded, 1 = from Probation.
        from: u32,
    },
}

/// Per-flow supervisor counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct SupervisorStats {
    /// Healthy → Degraded transitions.
    pub degraded: u64,
    /// Forced fallbacks to the native path (incl. peer-incapable).
    pub fallbacks: u64,
    /// Probation windows opened.
    pub probations: u64,
    /// Returns to Healthy (from Degraded or Probation).
    pub recoveries: u64,
    /// Full ROHC context refreshes requested.
    pub refreshes: u64,
    /// AP-handoff blackouts reported.
    pub handoffs: u64,
    /// Estimator-divergence signals received (any state). Zero on the
    /// whole PR 3 fault matrix — pinned by a regression test.
    pub est_divergence: u64,
}

/// Final per-flow supervisor outcome, surfaced in
/// [`RunResult`](crate::RunResult).
#[derive(Debug, Clone, Copy)]
pub struct SupervisorReport {
    /// State the flow ended the run in.
    pub final_state: FlowHealth,
    /// Transition counters.
    pub stats: SupervisorStats,
}

/// The per-flow health state machine.
#[derive(Debug)]
pub struct FlowSupervisor {
    cfg: SupervisorConfig,
    state: FlowHealth,
    /// Accumulated fault score (decayed by good signals).
    score: u32,
    /// Clean blob decodes seen so far in the current probation window.
    successes: u32,
    /// Backoff to use for the *next* fallback.
    backoff: SimDuration,
    /// Cumulative probation attempts (the trace event's 1-based
    /// `attempt`).
    attempts: u64,
    /// Whether a probe timer is currently outstanding.
    probe_armed: bool,
    /// A handoff blackout is in progress: probes are suppressed until
    /// re-association (which always arms a fresh one).
    blackout: bool,
    stats: SupervisorStats,
}

impl FlowSupervisor {
    /// A supervisor for one flow, starting healthy.
    pub fn new(cfg: SupervisorConfig) -> Self {
        FlowSupervisor {
            cfg,
            state: FlowHealth::Healthy,
            score: 0,
            successes: 0,
            backoff: cfg.probation_initial,
            attempts: 0,
            probe_armed: false,
            blackout: false,
            stats: SupervisorStats::default(),
        }
    }

    /// Current health state.
    pub fn state(&self) -> FlowHealth {
        self.state
    }

    /// Current fault score.
    pub fn score(&self) -> u32 {
        self.score
    }

    /// Transition counters.
    pub fn stats(&self) -> &SupervisorStats {
        &self.stats
    }

    /// Whether a probe timer is outstanding (every `NativeFallback`
    /// rest state must have one — pinned by the liveness proptest).
    pub fn probe_armed(&self) -> bool {
        self.probe_armed
    }

    /// Whether a handoff blackout is in progress (disassociated, not
    /// yet re-associated).
    pub fn in_blackout(&self) -> bool {
        self.blackout
    }

    /// Final report for [`RunResult`](crate::RunResult).
    pub fn report(&self) -> SupervisorReport {
        SupervisorReport {
            final_state: self.state,
            stats: self.stats,
        }
    }

    /// The peer turned out not to be HACK-capable: permanent clean
    /// fallback. Absorbing — all later signals and probes are ignored.
    pub fn mark_peer_incapable(&mut self) -> Vec<SupervisorAction> {
        if self.state == FlowHealth::PeerIncapable {
            return Vec::new();
        }
        self.state = FlowHealth::PeerIncapable;
        self.probe_armed = false;
        self.stats.fallbacks += 1;
        vec![
            SupervisorAction::ForceNative,
            SupervisorAction::NoteFallback {
                reason: fallback_reason::PEER_INCAPABLE,
                backoff: SimDuration::ZERO,
            },
        ]
    }

    /// The station disassociated for a roam: the link is black until
    /// re-association. Forces native (held ACKs were already flushed by
    /// the driver) and suppresses probes for the blackout's duration;
    /// [`FlowSupervisor::on_reassociated`] re-arms them. The flow will
    /// pass through probation on the new association rather than
    /// resuming HACK blind.
    pub fn on_handoff(&mut self, _now: SimTime) -> Vec<SupervisorAction> {
        self.stats.handoffs += 1;
        self.blackout = true;
        self.probe_armed = false;
        if self.state == FlowHealth::PeerIncapable {
            // Already native and permanent; re-association decides
            // whether the new peer lifts it.
            return Vec::new();
        }
        let was_fallback = self.state == FlowHealth::NativeFallback;
        self.state = FlowHealth::NativeFallback;
        self.score = 0;
        self.successes = 0;
        if was_fallback {
            // Already on the native path; no new fallback to report.
            return Vec::new();
        }
        self.stats.fallbacks += 1;
        vec![
            SupervisorAction::ForceNative,
            SupervisorAction::NoteFallback {
                reason: fallback_reason::HANDOFF,
                backoff: self.backoff,
            },
        ]
    }

    /// Re-association completed; `capable` is the freshly negotiated
    /// HACK capability bit. A capable AP ends even a
    /// [`FlowHealth::PeerIncapable`] rest (the peer changed!) and arms
    /// the probation probe; an incapable one parks the flow in the
    /// permanent fallback until the next roam.
    pub fn on_reassociated(&mut self, capable: bool, now: SimTime) -> Vec<SupervisorAction> {
        self.blackout = false;
        if !capable {
            if self.state == FlowHealth::PeerIncapable {
                return Vec::new();
            }
            self.state = FlowHealth::PeerIncapable;
            self.probe_armed = false;
            self.stats.fallbacks += 1;
            return vec![
                SupervisorAction::ForceNative,
                SupervisorAction::NoteFallback {
                    reason: fallback_reason::PEER_INCAPABLE,
                    backoff: SimDuration::ZERO,
                },
            ];
        }
        // Capable AP: leave the absorbing state if we were in it, and
        // always arm a fresh probe — any pre-blackout timer was
        // suppressed, so this is the only way back to probation. The
        // backoff ladder is NOT doubled here: a roam is topology, not
        // evidence of HACK pathology.
        self.state = FlowHealth::NativeFallback;
        self.score = 0;
        self.successes = 0;
        self.probe_armed = true;
        vec![SupervisorAction::ScheduleProbe(now + self.backoff)]
    }

    /// Feed one observation; returns the actions it provokes.
    pub fn on_signal(&mut self, sig: HealthSignal, now: SimTime) -> Vec<SupervisorAction> {
        if sig == HealthSignal::EstimatorDivergence {
            self.stats.est_divergence += 1;
        }
        let mut out = Vec::new();
        match self.state {
            FlowHealth::PeerIncapable | FlowHealth::NativeFallback => {
                // Resting: native path active, nothing to score. The
                // fallback state wakes only via its probe timer.
            }
            FlowHealth::Healthy => {
                self.apply_score(sig);
                if self.score >= self.cfg.fallback_score {
                    // A single catastrophic burst can blow straight
                    // through both thresholds.
                    self.stats.degraded += 1;
                    out.push(SupervisorAction::NoteDegraded { score: self.score });
                    self.enter_fallback(now, &mut out);
                } else if self.score >= self.cfg.degrade_score {
                    self.state = FlowHealth::Degraded;
                    self.stats.degraded += 1;
                    out.push(SupervisorAction::NoteDegraded { score: self.score });
                }
            }
            FlowHealth::Degraded => {
                self.apply_score(sig);
                if self.score >= self.cfg.fallback_score {
                    self.enter_fallback(now, &mut out);
                } else if self.score == 0 {
                    self.state = FlowHealth::Healthy;
                    self.stats.recoveries += 1;
                    out.push(SupervisorAction::NoteRecovered { from: 0 });
                }
            }
            FlowHealth::Probation => {
                if sig == HealthSignal::BlobDecoded {
                    self.successes += 1;
                    if self.successes >= self.cfg.probation_success {
                        self.state = FlowHealth::Healthy;
                        self.score = 0;
                        self.backoff = self.cfg.probation_initial;
                        self.stats.recoveries += 1;
                        out.push(SupervisorAction::NoteRecovered { from: 1 });
                    }
                } else if !sig.is_good() {
                    self.score = self.score.saturating_add(sig.fault_weight());
                    // Probation is on a short leash: the degrade
                    // threshold (not the full fallback budget) sends it
                    // back, with the backoff doubled.
                    if self.score >= self.cfg.degrade_score {
                        self.enter_fallback(now, &mut out);
                    }
                }
            }
        }
        out
    }

    /// The probation probe timer fired.
    pub fn on_probe_timer(&mut self, _now: SimTime) -> Vec<SupervisorAction> {
        if self.state != FlowHealth::NativeFallback || self.blackout {
            // A stale probe (the flow was marked peer-incapable after
            // scheduling, the timer raced a transition, or a handoff
            // blackout is in progress — re-association will arm a fresh
            // probe): ignore.
            return Vec::new();
        }
        self.probe_armed = false;
        self.state = FlowHealth::Probation;
        self.score = 0;
        self.successes = 0;
        self.attempts += 1;
        self.stats.probations += 1;
        self.stats.refreshes += 1;
        vec![
            SupervisorAction::RefreshContexts,
            SupervisorAction::ReenableHack,
            SupervisorAction::NoteProbation {
                attempt: self.attempts,
            },
        ]
    }

    fn apply_score(&mut self, sig: HealthSignal) {
        if sig.is_good() {
            self.score = self.score.saturating_sub(self.cfg.decay_good);
        } else {
            self.score = self.score.saturating_add(sig.fault_weight());
        }
    }

    fn enter_fallback(&mut self, now: SimTime, out: &mut Vec<SupervisorAction>) {
        self.state = FlowHealth::NativeFallback;
        self.score = 0;
        self.successes = 0;
        self.stats.fallbacks += 1;
        let backoff = self.backoff;
        // Exponential doubling for the next fallback, capped.
        self.backoff = (self.backoff + self.backoff).min(self.cfg.probation_max);
        self.probe_armed = true;
        out.push(SupervisorAction::ForceNative);
        out.push(SupervisorAction::NoteFallback {
            reason: fallback_reason::FAULTS,
            backoff,
        });
        out.push(SupervisorAction::ScheduleProbe(now + backoff));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn cfg() -> SupervisorConfig {
        SupervisorConfig::default()
    }

    #[test]
    fn faults_degrade_then_fall_back() {
        let mut s = FlowSupervisor::new(cfg());
        // FcsBad (weight 1) signals reach the degrade threshold exactly.
        let deg = u64::from(cfg().degrade_score);
        for i in 0..deg - 1 {
            assert!(s.on_signal(HealthSignal::FcsBad, t(i)).is_empty());
        }
        let acts = s.on_signal(HealthSignal::FcsBad, t(deg));
        assert_eq!(
            acts,
            vec![SupervisorAction::NoteDegraded {
                score: cfg().degrade_score
            }]
        );
        assert_eq!(s.state(), FlowHealth::Degraded);
        // RTO stalls (weight 4) push it over the fallback line.
        let stalls = (cfg().fallback_score - cfg().degrade_score).div_ceil(4);
        let mut acts = Vec::new();
        for i in 0..u64::from(stalls) {
            acts = s.on_signal(HealthSignal::RtoStall, t(deg + 1 + i));
        }
        assert_eq!(s.state(), FlowHealth::NativeFallback);
        assert!(acts.contains(&SupervisorAction::ForceNative));
        assert!(acts.contains(&SupervisorAction::ScheduleProbe(
            t(deg + u64::from(stalls)) + cfg().probation_initial
        )));
        assert!(s.probe_armed());
        assert_eq!(s.stats().fallbacks, 1);
    }

    #[test]
    fn good_signals_decay_degraded_back_to_healthy() {
        let mut s = FlowSupervisor::new(cfg());
        let deg = u64::from(cfg().degrade_score);
        for i in 0..deg {
            s.on_signal(HealthSignal::FcsBad, t(i));
        }
        assert_eq!(s.state(), FlowHealth::Degraded);
        let goods = cfg().degrade_score.div_ceil(cfg().decay_good);
        let mut recovered = Vec::new();
        for i in 0..u64::from(goods) {
            recovered = s.on_signal(HealthSignal::BlobDecoded, t(100 + i));
        }
        assert_eq!(s.state(), FlowHealth::Healthy);
        assert_eq!(recovered, vec![SupervisorAction::NoteRecovered { from: 0 }]);
        assert_eq!(s.stats().recoveries, 1);
    }

    #[test]
    fn catastrophic_burst_skips_straight_to_fallback() {
        // One RTO stall (weight 4) blows through both thresholds at
        // once: the degrade note and the fallback sequence fire
        // together.
        let mut s = FlowSupervisor::new(SupervisorConfig {
            degrade_score: 3,
            fallback_score: 4,
            ..cfg()
        });
        let acts = s.on_signal(HealthSignal::RtoStall, t(1));
        assert_eq!(s.state(), FlowHealth::NativeFallback);
        assert!(acts
            .iter()
            .any(|a| matches!(a, SupervisorAction::NoteDegraded { .. })));
        assert!(acts.contains(&SupervisorAction::ForceNative));
        assert_eq!(s.stats().degraded, 1);
        assert_eq!(s.stats().fallbacks, 1);
    }

    /// RtoStall (weight 4) signals enough to blow from Healthy straight
    /// through the fallback threshold.
    fn stall_into_fallback(s: &mut FlowSupervisor, base_ms: u64) {
        let stalls = cfg().fallback_score.div_ceil(4);
        for i in 0..u64::from(stalls) {
            s.on_signal(HealthSignal::RtoStall, t(base_ms + i));
        }
        assert_eq!(s.state(), FlowHealth::NativeFallback);
    }

    #[test]
    fn probation_success_recovers_and_resets_backoff() {
        let mut s = FlowSupervisor::new(cfg());
        stall_into_fallback(&mut s, 0);
        let acts = s.on_probe_timer(t(500));
        assert_eq!(s.state(), FlowHealth::Probation);
        assert!(acts.contains(&SupervisorAction::RefreshContexts));
        assert!(acts.contains(&SupervisorAction::ReenableHack));
        assert!(acts.contains(&SupervisorAction::NoteProbation { attempt: 1 }));
        for i in 0..cfg().probation_success {
            s.on_signal(HealthSignal::BlobDecoded, t(600 + u64::from(i)));
        }
        assert_eq!(s.state(), FlowHealth::Healthy);
        // Backoff reset: a second fallback schedules at the initial
        // delay again.
        stall_into_fallback(&mut s, 700);
        assert!(s
            .on_probe_timer(t(1000))
            .contains(&SupervisorAction::ReenableHack));
    }

    #[test]
    fn probation_failure_doubles_backoff() {
        let mut s = FlowSupervisor::new(cfg());
        stall_into_fallback(&mut s, 0);
        s.on_probe_timer(t(500));
        // Faults during probation: the degrade threshold (not the full
        // fallback budget) sends it back with a doubled backoff.
        let crcs = cfg().degrade_score.div_ceil(3);
        let mut acts = Vec::new();
        for i in 0..u64::from(crcs) {
            acts = s.on_signal(HealthSignal::RohcCrcFailure, t(501 + i));
        }
        assert_eq!(s.state(), FlowHealth::NativeFallback);
        let doubled = cfg().probation_initial + cfg().probation_initial;
        assert!(acts.contains(&SupervisorAction::NoteFallback {
            reason: fallback_reason::FAULTS,
            backoff: doubled,
        }));
        assert_eq!(s.stats().fallbacks, 2);
    }

    #[test]
    fn backoff_is_capped() {
        let mut s = FlowSupervisor::new(cfg());
        let mut backoffs = Vec::new();
        for round in 0..20u64 {
            let base = round * 1000;
            if round > 0 {
                s.on_probe_timer(t(base));
            }
            // Stall until the round's fallback fires (extra stalls after
            // it are ignored in NativeFallback, so exactly one fallback
            // fires per round either way).
            for i in 0..u64::from(cfg().fallback_score.div_ceil(4)) {
                for a in s.on_signal(HealthSignal::RtoStall, t(base + 1 + i)) {
                    if let SupervisorAction::NoteFallback { backoff, .. } = a {
                        backoffs.push(backoff);
                    }
                }
            }
            assert_eq!(s.state(), FlowHealth::NativeFallback);
        }
        assert_eq!(backoffs.len(), 20, "one fallback per round");
        assert!(backoffs.iter().all(|b| *b <= cfg().probation_max));
        assert_eq!(*backoffs.last().unwrap(), cfg().probation_max);
        // Strictly doubling until the cap.
        assert_eq!(backoffs[1], backoffs[0] + backoffs[0]);
    }

    #[test]
    fn peer_incapable_is_absorbing() {
        let mut s = FlowSupervisor::new(cfg());
        let acts = s.mark_peer_incapable();
        assert!(acts.contains(&SupervisorAction::ForceNative));
        assert!(acts.contains(&SupervisorAction::NoteFallback {
            reason: fallback_reason::PEER_INCAPABLE,
            backoff: SimDuration::ZERO,
        }));
        // No signal or probe ever moves it again.
        assert!(s.on_signal(HealthSignal::RtoStall, t(1)).is_empty());
        assert!(s.on_probe_timer(t(2)).is_empty());
        assert!(s.mark_peer_incapable().is_empty());
        assert_eq!(s.state(), FlowHealth::PeerIncapable);
        assert!(!s.probe_armed());
    }

    #[test]
    fn handoff_blackout_then_capable_reassociation_probes() {
        let mut s = FlowSupervisor::new(cfg());
        let acts = s.on_handoff(t(10));
        assert_eq!(s.state(), FlowHealth::NativeFallback);
        assert!(s.in_blackout());
        assert!(!s.probe_armed());
        assert!(acts.contains(&SupervisorAction::ForceNative));
        assert!(acts.contains(&SupervisorAction::NoteFallback {
            reason: fallback_reason::HANDOFF,
            backoff: cfg().probation_initial,
        }));
        assert_eq!(s.stats().handoffs, 1);
        // Probes are suppressed during the blackout, even stale ones.
        assert!(s.on_probe_timer(t(20)).is_empty());
        assert_eq!(s.state(), FlowHealth::NativeFallback);
        // Re-association with a capable AP arms a fresh probe (backoff
        // ladder NOT doubled — a roam is not HACK pathology).
        let acts = s.on_reassociated(true, t(30));
        assert!(!s.in_blackout());
        assert!(s.probe_armed());
        assert_eq!(
            acts,
            vec![SupervisorAction::ScheduleProbe(
                t(30) + cfg().probation_initial
            )]
        );
        // The probe then opens probation and recovery proceeds normally.
        let acts = s.on_probe_timer(t(30) + cfg().probation_initial);
        assert!(acts.contains(&SupervisorAction::ReenableHack));
        assert_eq!(s.state(), FlowHealth::Probation);
    }

    #[test]
    fn handoff_to_incapable_ap_parks_until_capable_roam() {
        let mut s = FlowSupervisor::new(cfg());
        s.on_handoff(t(10));
        let acts = s.on_reassociated(false, t(30));
        assert_eq!(s.state(), FlowHealth::PeerIncapable);
        assert!(acts.contains(&SupervisorAction::NoteFallback {
            reason: fallback_reason::PEER_INCAPABLE,
            backoff: SimDuration::ZERO,
        }));
        // Parked: no probes, signals ignored.
        assert!(s.on_probe_timer(t(40)).is_empty());
        // A later roam to a *capable* AP lifts the permanent fallback —
        // the absorbing state is only absorbing per-association.
        s.on_handoff(t(50));
        let acts = s.on_reassociated(true, t(60));
        assert_eq!(s.state(), FlowHealth::NativeFallback);
        assert!(matches!(acts[0], SupervisorAction::ScheduleProbe(_)));
        assert_eq!(s.stats().handoffs, 2);
    }

    #[test]
    fn handoff_while_already_fallen_back_reports_no_new_fallback() {
        let mut s = FlowSupervisor::new(cfg());
        stall_into_fallback(&mut s, 0);
        assert_eq!(s.stats().fallbacks, 1);
        let acts = s.on_handoff(t(100));
        assert!(acts.is_empty(), "already native: {acts:?}");
        assert_eq!(s.stats().fallbacks, 1);
        assert!(!s.on_reassociated(true, t(120)).is_empty());
    }

    #[test]
    fn estimator_divergence_scores_and_counts() {
        let mut s = FlowSupervisor::new(cfg());
        let n = cfg().fallback_score.div_ceil(2);
        for i in 0..u64::from(n) {
            s.on_signal(HealthSignal::EstimatorDivergence, t(i));
        }
        assert_eq!(s.state(), FlowHealth::NativeFallback);
        assert_eq!(s.stats().est_divergence, u64::from(n));
    }

    #[test]
    fn fallback_ignores_signals_until_probe() {
        let mut s = FlowSupervisor::new(cfg());
        stall_into_fallback(&mut s, 0);
        assert!(s.on_signal(HealthSignal::RohcCrcFailure, t(50)).is_empty());
        assert!(s.on_signal(HealthSignal::BlobDecoded, t(51)).is_empty());
        assert_eq!(s.state(), FlowHealth::NativeFallback);
    }

    // ---- liveness proptest (satellite 4) -------------------------------

    /// One step of an arbitrary history: a signal, (when due) a probe
    /// firing, or a handoff blackout / re-association pair interleaved
    /// arbitrarily.
    #[derive(Debug, Clone, Copy)]
    enum Step {
        Sig(HealthSignal),
        Probe,
        Handoff,
        Reassoc(bool),
    }

    fn arb_signal() -> impl Strategy<Value = HealthSignal> {
        prop_oneof![
            Just(HealthSignal::RohcCrcFailure),
            Just(HealthSignal::RohcContextRepair),
            Just(HealthSignal::LlAckTimeout),
            Just(HealthSignal::HeldAckStale),
            Just(HealthSignal::HeldSpill),
            Just(HealthSignal::FcsBad),
            Just(HealthSignal::RtoStall),
            Just(HealthSignal::EstimatorDivergence),
            Just(HealthSignal::BlobDecoded),
            Just(HealthSignal::LlAckOk),
        ]
    }

    fn arb_step() -> impl Strategy<Value = Step> {
        prop_oneof![
            arb_signal().prop_map(Step::Sig),
            arb_signal().prop_map(Step::Sig),
            arb_signal().prop_map(Step::Sig),
            arb_signal().prop_map(Step::Sig),
            Just(Step::Probe),
            Just(Step::Handoff),
            Just(Step::Reassoc(true)),
            Just(Step::Reassoc(false)),
        ]
    }

    proptest! {
        /// From any reachable state, a healthy tail (due probes fire,
        /// blobs decode cleanly) always re-enters `Healthy` — or the
        /// flow rests in the clean permanent `PeerIncapable` fallback.
        /// No livelock, no deadlock.
        #[test]
        fn always_eventually_healthy(
            steps in proptest::collection::vec(arb_step(), 0..200),
            incapable_at in proptest::option::of(0usize..200),
        ) {
            let mut s = FlowSupervisor::new(cfg());
            let mut now = SimTime::ZERO;
            let tick = SimDuration::from_millis(1);
            for (i, step) in steps.iter().enumerate() {
                now += tick;
                if incapable_at == Some(i) {
                    s.mark_peer_incapable();
                }
                match step {
                    Step::Sig(sig) => { s.on_signal(*sig, now); }
                    Step::Probe => { s.on_probe_timer(now); }
                    Step::Handoff => if !s.in_blackout() { let _ = s.on_handoff(now); }
                    Step::Reassoc(cap) => if s.in_blackout() {
                        let _ = s.on_reassociated(*cap, now);
                    }
                }
                // Invariant: outside a handoff blackout, a fault-driven
                // fallback always has a probe outstanding — it can
                // never sleep forever. During a blackout probes are
                // deliberately suppressed; re-association re-arms.
                if s.state() == FlowHealth::NativeFallback && !s.in_blackout() {
                    prop_assert!(s.probe_armed());
                }
            }
            // Healthy tail: complete any in-flight handoff onto a
            // capable AP, fire due probes, then feed clean decodes.
            // Bounded steps must suffice — that's the liveness claim.
            if s.in_blackout() {
                now += tick;
                s.on_reassociated(true, now);
            }
            if s.state() == FlowHealth::PeerIncapable {
                prop_assert!(!s.probe_armed());
                return Ok(());
            }
            let mut budget = 4 * (cfg().fallback_score + cfg().probation_success);
            while s.state() != FlowHealth::Healthy {
                prop_assert!(budget > 0, "no convergence; stuck in {:?}", s.state());
                budget -= 1;
                now += tick;
                if s.state() == FlowHealth::NativeFallback {
                    s.on_probe_timer(now);
                } else {
                    s.on_signal(HealthSignal::BlobDecoded, now);
                }
            }
            prop_assert_eq!(s.state(), FlowHealth::Healthy);
        }
    }
}
