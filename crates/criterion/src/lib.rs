//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! This workspace must build without registry access, so the benches
//! link against this shim. It implements the subset of the API the
//! benches use — `Criterion::bench_function`, `benchmark_group` with
//! `sample_size`/`finish`, `Bencher::iter`/`iter_batched`, `BatchSize`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros —
//! reporting min/median/mean wall-clock time per iteration. There is no
//! statistical analysis, HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(800);
/// Measurement samples per benchmark (before `sample_size` override).
const DEFAULT_SAMPLES: usize = 20;

/// How per-iteration setup cost is amortized in `iter_batched`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per setup batch.
    SmallInput,
    /// Large inputs: few iterations per setup batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    fn new(target_samples: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            target_samples,
        }
    }

    /// Time `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in one sample's share?
        let share = TARGET / self.target_samples as u32;
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (share.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.target_samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / per_sample as u32);
        }
    }

    /// Time `routine` on fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        let min = s[0];
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<Duration>() / s.len() as u32;
        println!(
            "{name:<40} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            s.len()
        );
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Run and report one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            c: self,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks (shared sample-size override).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run and report one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size.unwrap_or(self.c.sample_size));
        f(&mut b);
        b.report(name);
        self
    }

    /// Finish the group (reporting happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one entry point, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Bench binaries are also built by `cargo test --benches`
            // with harness arguments; only time things under `bench`.
            let bench_mode = std::env::args().any(|a| a == "--bench");
            if !bench_mode {
                println!("(criterion shim: pass --bench to run measurements)");
                return;
            }
            $($group();)+
        }
    };
}
