//! # tcp-hack — TCP/HACK: Hierarchical ACKs for Efficient Wireless Medium Utilization
//!
//! A from-scratch Rust reproduction of Salameh, Zhushi, Handley,
//! Jamieson & Karp, *"HACK: Hierarchical ACKs for Efficient Wireless
//! Medium Utilization"* (USENIX ATC 2014).
//!
//! TCP over WiFi pays a medium acquisition — idle sensing, backoff, and
//! a possible collision — for every TCP ACK its receiver returns.
//! TCP/HACK eliminates those acquisitions by carrying ROHC-compressed
//! TCP ACKs *inside* the 802.11 link-layer acknowledgments that data
//! frames already elicit.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`sim`] | deterministic discrete-event kernel |
//! | [`phy`] | 802.11a/n rates, airtime, channel, medium |
//! | [`mac`] | DCF/EDCA MAC with A-MPDU + Block ACK + HACK bits |
//! | [`tcp`] | sans-IO NewReno TCP with byte-exact headers |
//! | [`rohc`] | W-LSB header compression, MD5 CIDs, ROHC CRCs |
//! | [`core`] | the HACK drivers and whole-network simulation |
//! | [`campaign`] | declarative sweeps, parallel execution, result cache |
//! | [`analysis`] | closed-form capacity models (Figure 1) |
//!
//! ## Quickstart
//!
//! ```no_run
//! use tcp_hack::core::{run, HackMode, ScenarioBuilder, ScenarioConfig};
//!
//! let stock = run(ScenarioBuilder::dot11n_download(150, 1, HackMode::Disabled).build());
//! let hack = run(ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build());
//! println!(
//!     "TCP/802.11n {:.1} Mbps → TCP/HACK {:.1} Mbps ({:+.1}%)",
//!     stock.aggregate_goodput_mbps,
//!     hack.aggregate_goodput_mbps,
//!     (hack.aggregate_goodput_mbps / stock.aggregate_goodput_mbps - 1.0) * 100.0,
//! );
//! ```
//!
//! See `examples/` for runnable scenarios and the `experiments` binary
//! in `crates/bench` for the paper's full table/figure suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hack_analysis as analysis;
pub use hack_campaign as campaign;
pub use hack_core as core;
pub use hack_mac as mac;
pub use hack_phy as phy;
pub use hack_rohc as rohc;
pub use hack_sim as sim;
pub use hack_tcp as tcp;
