//! The paper's upload motivation: "we envisage TCP/HACK as especially
//! useful for wireless backup to LAN-attached storage, such as a Time
//! Capsule" (§3.1). Here a client pushes a fixed-size backup to the
//! server; HACK runs symmetrically — the *AP* compresses the server's
//! TCP ACKs onto its Block ACKs toward the client.
//!
//! ```sh
//! cargo run --release --example wireless_backup [megabytes]
//! ```

use tcp_hack::core::{run, HackMode, ScenarioBuilder, TrafficModel};
use tcp_hack::sim::SimDuration;

fn main() {
    let mb: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    println!("Backing up {mb} MB over 802.11n @ 150 Mbps (client → wired server)\n");

    for (label, mode) in [
        ("TCP / stock 802.11n", HackMode::Disabled),
        ("TCP / HACK (MORE DATA)", HackMode::MoreData),
    ] {
        let cfg = ScenarioBuilder::dot11n_download(150, 1, mode)
            .traffic(TrafficModel::BulkUpload)
            .transfer_bytes(mb * 1_000_000)
            .duration(SimDuration::from_secs(600))
            .build();
        let r = run(cfg);
        match r.completion() {
            Some(t) => {
                let secs = t.as_secs_f64();
                println!(
                    "{label:<24} finished in {secs:6.2} s  ({:.1} Mbps)",
                    (mb * 1_000_000) as f64 * 8.0 / secs / 1e6
                );
            }
            None => println!("{label:<24} did not finish (increase duration)"),
        }
    }
    println!("\nIn the upload direction the TCP ACKs flow AP → client, so the AP-side");
    println!("driver holds them and the client-side driver reconstitutes them.");
}
