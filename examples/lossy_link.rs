//! HACK under a weakening signal (the Figure 11 regime): a client walks
//! away from the AP and the SNR drops. HACK's §3.4 retention machinery
//! must keep compression contexts synchronized through the losses.
//!
//! ```sh
//! cargo run --release --example lossy_link [rate_mbps]
//! ```

use tcp_hack::core::{run, HackMode, LossConfig, ScenarioBuilder};
use tcp_hack::phy::{Channel, PhyRate, StationId};
use tcp_hack::sim::SimDuration;

fn main() {
    let rate: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(90);
    let min_snr = PhyRate::ht(rate).min_snr_db();
    println!("802.11n @ {rate} Mbps download vs SNR (rate needs ≈{min_snr:.0} dB)\n");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>8} {:>12} {:>10}",
        "SNR dB", "dist m", "TCP Mbps", "HACK Mbps", "gain", "CRC fails", "dup blobs"
    );

    let mut ch = Channel::indoor();
    ch.place(StationId(0), 0.0, 0.0);

    for snr_off in [8.0, 5.0, 3.0, 1.5, 0.5, -1.0] {
        let snr = min_snr + snr_off;
        let d = ch.distance_for_snr(snr);
        let mut goodputs = Vec::new();
        let mut crc = 0;
        let mut dups = 0;
        for mode in [HackMode::Disabled, HackMode::MoreData] {
            let mut cfg = ScenarioBuilder::dot11n_download(rate, 1, mode)
                .duration(SimDuration::from_secs(4))
                .build();
            cfg.loss = LossConfig::SnrDistance(d);
            let r = run(cfg);
            goodputs.push(r.flow_goodput_full_mbps[0]);
            if mode == HackMode::MoreData {
                crc = r.decompressor.crc_failures;
                dups = r.decompressor.duplicates;
            }
        }
        let gain = if goodputs[0] > 0.5 {
            format!("{:+.0}%", (goodputs[1] / goodputs[0] - 1.0) * 100.0)
        } else {
            "-".into()
        };
        println!(
            "{snr:>8.1} {d:>10.1} {:>12.2} {:>12.2} {gain:>8} {crc:>12} {dups:>10}",
            goodputs[0], goodputs[1]
        );
    }
    println!("\nDuplicate blobs are the retention mechanism working (the AP discards");
    println!("them by master sequence number); CRC failures heal on native ACKs.");
}
