//! Quickstart: how much does TCP/HACK buy on a single-client 802.11n
//! download?
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tcp_hack::core::{run, HackMode, ScenarioBuilder};
use tcp_hack::sim::SimDuration;

fn main() {
    println!("802.11n @ 150 Mbps, one client downloading through an AP\n");

    let mut results = Vec::new();
    for (label, mode) in [
        ("TCP over stock 802.11n", HackMode::Disabled),
        ("TCP over HACK (MORE DATA)", HackMode::MoreData),
    ] {
        let cfg = ScenarioBuilder::dot11n_download(150, 1, mode)
            .duration(SimDuration::from_secs(5))
            .build();
        let r = run(cfg);
        println!(
            "{label:<28} {:6.1} Mbps   (collisions: {:4}, TCP ACKs riding LL ACKs: {})",
            r.aggregate_goodput_mbps, r.collisions, r.driver[0].hacked_acks,
        );
        results.push(r.aggregate_goodput_mbps);
    }

    println!(
        "\nHACK improvement: {:+.1}%  (the paper reports ~15% for this setup)",
        (results[1] / results[0] - 1.0) * 100.0
    );
}
