//! The paper's headline scenario (§4.3, Figure 10): several clients
//! downloading over 802.11n while their TCP ACKs contend — or don't,
//! with HACK.
//!
//! ```sh
//! cargo run --release --example multi_client_download [n_clients]
//! ```

use tcp_hack::core::{run, HackMode, ScenarioBuilder};
use tcp_hack::sim::SimDuration;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("802.11n @ 150 Mbps, {n} clients, bulk downloads from a wired server\n");
    println!(
        "{:<26} {:>10} {:>12} {:>12}",
        "scheme", "aggregate", "collisions", "per-flow"
    );

    for (label, mode, udp) in [
        ("UDP (capacity baseline)", HackMode::Disabled, true),
        ("TCP / stock 802.11n", HackMode::Disabled, false),
        ("TCP / Opportunistic HACK", HackMode::Opportunistic, false),
        ("TCP / HACK (MORE DATA)", HackMode::MoreData, false),
    ] {
        let mut cfg = ScenarioBuilder::dot11n_download(150, n, mode).build();
        cfg.stagger = SimDuration::from_millis(200);
        cfg.duration = cfg.stagger * n as u64 + cfg.warmup + SimDuration::from_secs(5);
        if udp {
            cfg = cfg.with_udp();
        }
        let r = run(cfg);
        let flows: Vec<String> = r
            .flow_goodput_mbps
            .iter()
            .map(|g| format!("{g:.0}"))
            .collect();
        println!(
            "{label:<26} {:>7.1} Mbps {:>9} {:>15}",
            r.aggregate_goodput_mbps,
            r.collisions,
            flows.join("/"),
        );
    }
    println!("\nHACK turns each bidirectional TCP flow into (almost) unidirectional");
    println!("traffic: fewer contenders, fewer collisions, more goodput.");
}
