//! A bare look at the ROHC-style codec from §3.3.2: compress a stream of
//! TCP ACKs, show the bytes, replay a retained blob, and watch the
//! master-sequence-number dedup absorb it.
//!
//! ```sh
//! cargo run --release --example ack_compression
//! ```

use tcp_hack::rohc::{build_blob, Compressor, Decompressor};
use tcp_hack::tcp::{flags, Ipv4Addr, Ipv4Packet, TcpOption, TcpSegment, TcpSeq, Transport};

fn ack(ackno: u32, ident: u16, ts: u32) -> Ipv4Packet {
    Ipv4Packet {
        src: Ipv4Addr::new(192, 168, 0, 10),
        dst: Ipv4Addr::new(10, 0, 0, 1),
        ident,
        ttl: 64,
        transport: Transport::Tcp(TcpSegment {
            src_port: 40_000,
            dst_port: 5_001,
            seq: TcpSeq(4242),
            ack: TcpSeq(ackno),
            flags: flags::ACK,
            window: 2048,
            options: vec![TcpOption::Timestamps {
                tsval: ts,
                tsecr: ts - 2,
            }]
            .into(),
            payload_len: 0,
        }),
    }
}

fn main() {
    let mut client = Compressor::new();
    let mut ap = Decompressor::new();

    // A flow starts with a natively transmitted ACK — that *is* the
    // context-establishment mechanism (no ROHC IR packets).
    let first = ack(10_000, 1, 100);
    println!(
        "native ACK ({} bytes on the wire) seeds CID {}",
        first.wire_len(),
        tcp_hack::rohc::cid_for_tuple(&first.five_tuple().bytes()),
    );
    client.observe_native(&first);
    ap.observe_native(&first);

    // A burst of delayed ACKs (one per two 1460-byte segments).
    let mut segments = Vec::new();
    for i in 1..=6u32 {
        let p = ack(10_000 + i * 2920, 1 + i as u16, 100 + i);
        let seg = client.compress(&p).expect("in-profile ACK");
        println!(
            "  ACK {:>6}  →  {:2} bytes: {:02x?}",
            10_000 + i * 2920,
            seg.len(),
            seg
        );
        segments.push(seg);
    }

    let blob = build_blob(&segments);
    println!(
        "\nblob riding the Block ACK: {} bytes for {} ACKs ({} bytes natively)",
        blob.len(),
        segments.len(),
        segments.len() as u32 * first.wire_len()
    );

    let res = ap.decompress_blob(&blob);
    println!(
        "AP reconstitutes {} ACKs byte-exactly, {} errors",
        res.packets.len(),
        res.errors.len()
    );
    assert_eq!(res.packets.len(), 6);
    assert_eq!(res.packets[5], ack(10_000 + 6 * 2920, 7, 106));

    // The client retains the blob until §3.4 confirms delivery; a lost
    // Block ACK means the same bytes ride again — and must not re-apply.
    let res2 = ap.decompress_blob(&blob);
    println!(
        "replayed blob: {} new packets, {} duplicates discarded by MSN",
        res2.packets.len(),
        res2.duplicates
    );
    assert_eq!(res2.packets.len(), 0);
    assert_eq!(res2.duplicates, 6);

    println!(
        "\ncompression ratio so far: {:.1}:1 (the paper's full ROHC-TCP reaches ~12:1)",
        client.stats().ratio()
    );
}
